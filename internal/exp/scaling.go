package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stability"
	"repro/internal/sweep"
)

// RunE14 studies the approach to the stability boundary: Theorem 1
// guarantees E[N] < ∞ strictly inside the region, but says nothing about
// its growth as the margin shrinks. Using the exact truncated solver we
// measure E[N] as λ0 ↗ λ0* for Example 1 and verify the blow-up (each
// margin halving should roughly double the occupancy, the usual heavy-
// traffic 1/margin scaling), alongside the critical-scale and critical-γ
// finders that locate the boundary itself.
func RunE14(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Approach to the boundary: E[N] blow-up and boundary finders",
		Headers: []string{"measurement", "prediction", "measured", "verdict"},
	}
	base := model.Params{
		K: 1, Us: 1, Mu: 1, Gamma: 2,
		Lambda: map[pieceset.Set]float64{pieceset.Empty: 1},
	}

	// Boundary finders against the closed form λ0* = 2, γ* = 2µ at λ0 = 2Us.
	scale, err := stability.CriticalScale(base)
	if err != nil {
		return nil, err
	}
	t.AddRow("critical scale from λ0=1", "2 (closed form)", fmtF(scale),
		markAgreement(absRel(scale, 2) < 1e-6))
	gPoint := base
	gPoint.Lambda = map[pieceset.Set]float64{pieceset.Empty: 2}
	gCrit, err := stability.CriticalGamma(gPoint)
	if err != nil {
		return nil, err
	}
	t.AddRow("critical γ at λ0=2·U_s", "2µ (closed form)", fmtF(gCrit),
		markAgreement(absRel(gCrit, 2) < 1e-6))

	// E[N] blow-up as the margin to the threshold 2 halves, scanned as one
	// sweep batch: the exact-solver cells run case-parallel through the
	// sharded evaluation layer and memoize like any other sweep cell. The
	// nearest margin needs ~10^6 uniformized iterations, so quick mode
	// stops at margin 0.5.
	margins := []float64{1, 0.5}
	if !cfg.Quick {
		margins = append(margins, 0.25)
	}
	pts := make([]sweep.Point, len(margins))
	for i, m := range margins {
		p := base
		p.Lambda = map[pieceset.Set]float64{pieceset.Empty: 2 - m}
		pts[i] = sweep.Point{Params: p, X: m}
	}
	runner := &sweep.Runner{Evaluator: exactOccupancy{}, Workers: cfg.Workers, Sink: cfg.Sink}
	cells, err := runner.Points(cfg.Context, "E14/margins", pts)
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for i, m := range margins {
		meanN := cells[i].Value
		cell := fmt.Sprintf("E[N] = %s (boundary mass %.1e)", fmtF(meanN), cells[i].Values["boundary_mass"])
		verdict := "informational"
		if i > 0 {
			ratio := meanN / prev
			// Blow-up per margin halving: between the M/M/1-like 2× and a
			// conservative 4.5× bound.
			verdict = markAgreement(ratio > 1.5 && ratio < 4.5)
			cell += fmt.Sprintf(", ×%s vs previous", fmtF(ratio))
		}
		t.AddRow(fmt.Sprintf("margin %s (λ0 = %s)", fmtF(m), fmtF(2-m)),
			"E[N] blows up toward the boundary", cell, verdict)
		prev = meanN
	}

	// Sojourn time via Little at the widest margin, cross-checked against
	// the per-peer view through the type-count simulator occupancy.
	p := base
	p.Lambda = map[pieceset.Set]float64{pieceset.Empty: 1}
	sys, err := core.NewSystem(p)
	if err != nil {
		return nil, err
	}
	res, err := sys.ExactStationary(60)
	if err != nil {
		return nil, err
	}
	sw, err := sys.NewSwarm(sim.WithSeed(cfg.seed()))
	if err != nil {
		return nil, err
	}
	horizon := cfg.pick(5000, 30000)
	if _, err := sw.RunUntil(horizon/10, 0); err != nil {
		return nil, err
	}
	sw.ResetOccupancy()
	if _, err := sw.RunUntil(horizon, 0); err != nil {
		return nil, err
	}
	little := sys.MeanSojournTime(sw.MeanPeers())
	exact := sys.MeanSojournTime(res.MeanN)
	t.AddRow("mean sojourn E[T] (Little)", fmtF(exact), fmtF(little),
		markAgreement(absRel(little, exact) < 0.15))
	t.AddNote("E[N] from the exact truncated solver; heavy-traffic factor checked per margin halving")
	return t, nil
}

// exactOccupancy is the E14 sweep evaluator: stationary E[N] from the
// exact truncated solver, with the truncation level sized to the margin
// (pt.X) so the boundary mass stays negligible.
type exactOccupancy struct{}

// Name implements sweep.Evaluator.
func (exactOccupancy) Name() string { return "e14-exact" }

// Fingerprint implements sweep.Evaluator.
func (exactOccupancy) Fingerprint() string { return "iters=2e6;eps=1e-10" }

// Evaluate implements sweep.Evaluator.
func (exactOccupancy) Evaluate(ctx context.Context, pt sweep.Point, r *rng.RNG) (sweep.Cell, error) {
	// Truncation level sized to the margin 2 − λ_total, a pure function of
	// the cell's parameters as the cache-key contract requires (pt.X is
	// informational and excluded from the key).
	margin := 2 - pt.Params.LambdaTotal()
	nmax := 150
	switch {
	case margin >= 1:
		nmax = 70
	case margin >= 0.5:
		nmax = 100
	}
	c, err := markov.Build(pt.Params, nmax)
	if err != nil {
		return sweep.Cell{}, err
	}
	res, err := c.Stationary(2_000_000, 1e-10)
	if err != nil {
		return sweep.Cell{}, err
	}
	cell := sweep.Cell{Class: "stable", Value: res.MeanN}
	cell.SetFinite("mean_n", res.MeanN)
	cell.SetFinite("boundary_mass", res.BoundaryMass)
	return cell, nil
}

// absRel is |a−b|/|b| for table verdicts.
func absRel(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	return d / b
}
