package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/stability"
)

// runPoint classifies one parameter point theoretically and empirically and
// appends a comparison row.
func runPoint(t *Table, cfg Config, label string, p model.Params, run core.RunConfig) error {
	sys, err := core.NewSystem(p)
	if err != nil {
		return err
	}
	emp, err := sys.ClassifyEmpirically(run)
	if err != nil {
		return err
	}
	verdict := sys.Verdict()
	occ := "-"
	if !math.IsNaN(emp.MeanOccupancy) {
		occ = fmtF(emp.MeanOccupancy)
	}
	t.AddRow(label, verdict.String(), emp.Label(), occ, fmtF(emp.MeanFinalN),
		markAgreement(emp.Agrees(verdict)))
	return nil
}

func comparisonHeaders() []string {
	return []string{"scenario", "Theorem 1", "simulated", "E[N] (stable)", "final N", "verdict"}
}

// RunE1 sweeps Example 1 (K = 1) across the threshold λ0* = U_s/(1−µ/γ).
func RunE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Example 1: K=1, U_s=1, µ=1, γ=2 (threshold λ0* = 2)",
		Headers: comparisonHeaders(),
	}
	run := cfg.runConfig(cfg.pick(600, 2500), cfg.pickInt(250, 1200), cfg.pickInt(3, 10))
	threshold := stability.Example1Threshold(1, 1, 2)
	t.AddNote("analytic threshold λ0* = %s", fmtF(threshold))
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.25, 2, 3} {
		lambda0 := frac * threshold
		p := model.Params{
			K: 1, Us: 1, Mu: 1, Gamma: 2,
			Lambda: map[pieceset.Set]float64{pieceset.Empty: lambda0},
		}
		label := fmt.Sprintf("λ0 = %s (%sλ0*)", fmtF(lambda0), fmtF(frac))
		if err := runPoint(t, cfg, label, p, run); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RunE2 sweeps Example 2 (K = 4, arrivals of types {1,2} and {3,4}, γ = ∞)
// across the λ12 = 2λ34 boundary.
func RunE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Example 2: K=4, γ=∞, types {1,2}/{3,4} (stable iff λ12<2λ34 and λ34<2λ12)",
		Headers: comparisonHeaders(),
	}
	// The slowest transient case grows at ∆ ≈ 0.4 peers/unit, so the
	// horizon must let it clear the cap.
	run := cfg.runConfig(cfg.pick(1000, 4000), cfg.pickInt(250, 1000), cfg.pickInt(3, 8))
	const l34 = 1.0
	for _, l12 := range []float64{0.3, 0.6, 1.0, 1.6, 2.5, 4.0} {
		p := model.Params{
			K: 4, Us: 0, Mu: 1, Gamma: math.Inf(1),
			Lambda: map[pieceset.Set]float64{
				pieceset.MustOf(1, 2): l12,
				pieceset.MustOf(3, 4): l34,
			},
		}
		label := fmt.Sprintf("λ12 = %s, λ34 = %s", fmtF(l12), fmtF(l34))
		if err := runPoint(t, cfg, label, p, run); err != nil {
			return nil, err
		}
	}
	t.AddNote("paper: stable region is 0.5 < λ12/λ34 < 2")
	return t, nil
}

// RunE3 sweeps Example 3 (K = 3, single-piece arrivals with peer seeds).
func RunE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Example 3: K=3, µ=1, γ=2; stable iff λ_i+λ_j < 5·λ_k for all perms",
		Headers: comparisonHeaders(),
	}
	// The γ=∞ asymmetric case grows at only ∆ ≈ 0.3 peers/unit; size the
	// horizon so it still clears the cap.
	run := cfg.runConfig(cfg.pick(1200, 4000), cfg.pickInt(250, 1000), cfg.pickInt(3, 8))
	factor := stability.Example3Factor(1, 2)
	t.AddNote("analytic factor (2+µ/γ)/(1−µ/γ) = %s", fmtF(factor))
	cases := []struct {
		l1, l2, l3 float64
	}{
		{1, 1, 1},     // symmetric, stable
		{1, 1, 0.5},   // 2 < 2.5: stable
		{1, 1, 0.3},   // 2 > 1.5: transient
		{2, 0.5, 0.5}, // 2.5 > 2.5·... λ2+λ3=1 < 10; λ1+λ2=2.5 ≤ 2.5: borderline
		{3, 0.2, 0.2}, // strongly asymmetric: transient
	}
	for _, cse := range cases {
		p := model.Params{
			K: 3, Us: 0, Mu: 1, Gamma: 2,
			Lambda: map[pieceset.Set]float64{
				pieceset.MustOf(1): cse.l1,
				pieceset.MustOf(2): cse.l2,
				pieceset.MustOf(3): cse.l3,
			},
		}
		label := fmt.Sprintf("λ = (%s, %s, %s)", fmtF(cse.l1), fmtF(cse.l2), fmtF(cse.l3))
		if err := runPoint(t, cfg, label, p, run); err != nil {
			return nil, err
		}
	}
	// γ = ∞ special case: symmetric is borderline, asymmetric transient.
	pAsym := model.Params{
		K: 3, Us: 0, Mu: 1, Gamma: math.Inf(1),
		Lambda: map[pieceset.Set]float64{
			pieceset.MustOf(1): 1,
			pieceset.MustOf(2): 1,
			pieceset.MustOf(3): 1.3,
		},
	}
	if err := runPoint(t, cfg, "γ=∞, λ = (1, 1, 1.3)", pAsym, run); err != nil {
		return nil, err
	}
	t.AddNote("γ=∞ with unequal rates is transient (paper, end of Example 3)")
	return t, nil
}

// RunE4 demonstrates the headline corollary: γ ≤ µ (one extra piece
// uploaded as a peer seed, on average) stabilizes any arrival rate as long
// as every piece can enter the system.
func RunE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "One-more-piece corollary: K=3, U_s=0.1, µ=1, γ=1 (γ ≤ µ)",
		Headers: comparisonHeaders(),
	}
	run := cfg.runConfig(cfg.pick(150, 800), cfg.pickInt(100000, 400000), cfg.pickInt(2, 6))
	for _, lambda0 := range []float64{1, 10, cfg.pick(25, 50)} {
		p := model.Params{
			K: 3, Us: 0.1, Mu: 1, Gamma: 1,
			Lambda: map[pieceset.Set]float64{pieceset.Empty: lambda0},
		}
		// Growth detection threshold scales with load: a stable system at
		// arrival rate λ holds O(λ·E[T]) peers, so cap generously.
		runCase := run
		runCase.PeerCap = int(lambda0 * cfg.pick(400, 2000))
		label := fmt.Sprintf("λ0 = %s", fmtF(lambda0))
		if err := runPoint(t, cfg, label, p, runCase); err != nil {
			return nil, err
		}
	}
	t.AddNote("every row is provably stable despite U_s ≪ λ0: peer seeds upload ≈ µ/γ = 1 extra piece")
	return t, nil
}
