package repro

// Table-driven smoke coverage for the examples/ programs: build and run
// every example main at -quick scale so `go test ./...` catches bit-rot in
// code that otherwise has no test files. The table is discovered from the
// examples/ directory, so a new example is covered the moment it lands —
// as long as it accepts the conventional -quick flag.

import (
	"os"
	"os/exec"
	"testing"
	"time"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run real simulations; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel() // overlap the per-example go-run compiles
			start := time.Now()
			cmd := exec.Command("go", "run", "./examples/"+name, "-quick")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %s: %v\n%s",
					name, time.Since(start).Round(time.Millisecond), err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example directories discovered")
	}
}
