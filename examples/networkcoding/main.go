// Network coding (Theorem 15): when a fraction f of peers arrive holding
// one random coded piece, coding rescues a system that is hopeless without
// it. This example prints the paper's closed-form thresholds for its
// q = 64, K = 200 setting and then simulates a small coded swarm above the
// recurrence threshold next to its uncoded (transient) counterpart.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/codedsim"
	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/stability"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	horizon := 2000.0
	if quick {
		horizon = 300.0
	}
	// The paper's numeric example.
	fmt.Println("paper example (q=64, K=200):")
	fmt.Printf("  transient  if gifted fraction f < %.5f (q/((q−1)K))\n",
		stability.GiftedTransientThreshold(64, 200))
	fmt.Printf("  recurrent  if gifted fraction f > %.5f (q²/((q−1)²K))\n\n",
		stability.GiftedRecurrentThreshold(64, 200))

	// Simulated demonstration at q = 4, K = 2.
	const q, k = 4, 2
	field := gf.MustNew(q)
	hi := stability.GiftedRecurrentThreshold(q, k)
	f := (hi + 1) / 2
	fmt.Printf("simulation (q=%d, K=%d): recurrence threshold f* = %.3f, using f = %.3f\n",
		q, k, hi, f)

	coded := stability.CodedParams{
		K: k, Field: field, Us: 0, Mu: 1, Gamma: math.Inf(1),
		Arrivals: []stability.CodedArrival{
			{V: gf.ZeroSubspace(field, k), Rate: 1 - f},
		},
	}
	sw, err := codedsim.New(coded, codedsim.WithSeed(3), codedsim.WithRandomGiftRate(f))
	if err != nil {
		return err
	}
	if err := sw.RunUntil(horizon, 0); err != nil {
		return err
	}
	fmt.Printf("  coded swarm after t=%.0f:  N = %d, mean N = %.2f, decodes = %d\n",
		horizon, sw.N(), sw.MeanPeers(), sw.Stats().Departures)

	// The uncoded analogue: a fraction f of peers arrive with one random
	// DATA piece. Theorem 1: transient for any f < 1.
	lambda := map[pieceset.Set]float64{pieceset.Empty: 1 - f}
	for i := 1; i <= k; i++ {
		lambda[pieceset.MustOf(i)] = f / float64(k)
	}
	uncoded, err := core.NewSystem(model.Params{
		K: k, Us: 0, Mu: 1, Gamma: math.Inf(1), Lambda: lambda,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  uncoded analogue verdict (Theorem 1): %s\n", uncoded.Verdict())
	usw, err := uncoded.NewSwarm()
	if err != nil {
		return err
	}
	if _, err := usw.RunUntil(horizon, 5000); err != nil {
		return err
	}
	fmt.Printf("  uncoded swarm after t=%.0f: N = %d (keeps growing)\n", usw.Now(), usw.N())
	return nil
}
