// Stability map: sweep the (λ0, µ/γ) plane for Example 1 and print an
// ASCII map comparing Theorem 1's region (letters) with simulation
// (upper-case means the simulated sample path agreed). The vertical
// boundary λ0 = U_s/(1−µ/γ) curves exactly as the theorem predicts.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/stability"
)

func main() {
	quick := flag.Bool("quick", false, "smaller grid and horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	const us, mu = 1.0, 1.0
	fmt.Println("Example 1 stability map: U_s=1, µ=1")
	fmt.Println("rows: µ/γ (dwell help grows downward)  columns: λ0")
	fmt.Println("s/S = stable (theory / +simulation agrees), t/T = transient, b = borderline")
	fmt.Println()

	lambdas := []float64{0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8}
	ratios := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95}
	horizon := 150.0
	if quick {
		lambdas = []float64{0.5, 1, 2, 4, 8}
		ratios = []float64{0, 0.4, 0.8}
		horizon = 60
	}

	fmt.Printf("%8s |", "µ/γ \\ λ0")
	for _, l := range lambdas {
		fmt.Printf("%5.1f", l)
	}
	fmt.Println()
	fmt.Println("---------+---------------------------------------------")

	for _, r := range ratios {
		gamma := mu / r
		if r == 0 {
			gamma = 1e18 // effectively γ = ∞ relative to µ
		}
		fmt.Printf("%8.2f |", r)
		for _, l := range lambdas {
			p := model.Params{
				K: 1, Us: us, Mu: mu, Gamma: gamma,
				Lambda: map[pieceset.Set]float64{pieceset.Empty: l},
			}
			sys, err := core.NewSystem(p)
			if err != nil {
				return err
			}
			ch := "b"
			switch sys.Verdict() {
			case stability.PositiveRecurrent:
				ch = "s"
			case stability.Transient:
				ch = "t"
			}
			// Cheap empirical check per cell.
			emp, err := sys.ClassifyEmpirically(core.RunConfig{
				Horizon: horizon, PeerCap: 400, Replicas: 1, Seed: 9,
			})
			if err != nil {
				return err
			}
			if emp.Agrees(sys.Verdict()) && ch != "b" {
				ch = string(ch[0] - 'a' + 'A')
			}
			fmt.Printf("%5s", ch)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("threshold column for each row: λ0* = U_s/(1−µ/γ):")
	for _, r := range ratios {
		gamma := mu / r
		if r == 0 {
			fmt.Printf("  µ/γ=%.2f: λ0* = %.2f\n", r, us)
			continue
		}
		fmt.Printf("  µ/γ=%.2f: λ0* = %.2f\n", r, stability.Example1Threshold(us, mu, gamma))
	}
	return nil
}
