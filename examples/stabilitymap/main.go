// Stability map: sweep the (λ0, µ/γ) plane for Example 1 through the
// adaptive phase-diagram subsystem (internal/sweep) and print an ASCII map
// comparing Theorem 1's region (letters) with simulation (upper-case means
// the simulated sample path agreed). The vertical boundary
// λ0 = U_s/(1−µ/γ) curves exactly as the theorem predicts, and the sweep
// only simulates the cells near it at full resolution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/rng"
	"repro/internal/stability"
	"repro/internal/sweep"
)

func main() {
	quick := flag.Bool("quick", false, "smaller grid and horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	const us, mu = 1.0, 1.0
	fmt.Println("Example 1 stability map: U_s=1, µ=1")
	fmt.Println("rows: µ/γ (dwell help grows downward on the plot)  columns: λ0")
	fmt.Println("s/S = stable (theory / +simulation agrees), t/T = transient, b = borderline")
	fmt.Println()

	base := model.Params{
		K: 1, Us: us, Mu: mu, Gamma: 2,
		Lambda: map[pieceset.Set]float64{pieceset.Empty: 1},
	}
	horizon, depth := 150.0, 1
	xCells, yCells := 9, 6
	if quick {
		horizon, depth = 60, 0
		xCells, yCells = 5, 3
	}
	xAxis, err := sweep.AxisByName("lambda0")
	if err != nil {
		return err
	}
	yAxis, err := sweep.AxisByName("mu-over-gamma")
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Base: base,
		X:    sweep.AxisSpec{Axis: xAxis, Min: 0.5, Max: 8, Cells: xCells},
		Y:    sweep.AxisSpec{Axis: yAxis, Min: 0, Max: 0.95, Cells: yCells},

		RefineDepth: depth,
	}
	runner := &sweep.Runner{Evaluator: &agreementEvaluator{horizon: horizon}}
	m, err := grid.Run(context.Background(), runner)
	if err != nil {
		return err
	}
	if err := sweep.WriteASCII(os.Stdout, m); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("threshold per row: λ0* = U_s/(1−µ/γ):")
	for iy := m.NY - 1; iy >= 0; iy-- {
		r := m.Ys[iy]
		gamma := math.Inf(1) // µ/γ = 0 is exactly γ = ∞, a validated value
		if r > 0 {
			gamma = mu / r
		}
		fmt.Printf("  µ/γ=%.3f: λ0* = %.2f\n", r, stability.Example1Threshold(us, mu, gamma))
	}
	return nil
}

// agreementEvaluator classifies a cell by Theorem 1 and checks one cheap
// simulated sample path against it: classes s/t/b for the theoretical
// verdict, upper-cased when the simulation agrees.
type agreementEvaluator struct {
	horizon float64
}

// Name implements sweep.Evaluator.
func (e *agreementEvaluator) Name() string { return "stabilitymap" }

// Fingerprint implements sweep.Evaluator.
func (e *agreementEvaluator) Fingerprint() string { return fmt.Sprintf("h=%g", e.horizon) }

// Evaluate implements sweep.Evaluator.
func (e *agreementEvaluator) Evaluate(ctx context.Context, pt sweep.Point, r *rng.RNG) (sweep.Cell, error) {
	sys, err := core.NewSystem(pt.Params)
	if err != nil {
		return sweep.Cell{}, err
	}
	seed := r.Uint64()
	if seed == 0 {
		seed = 1
	}
	emp, err := sys.ClassifyEmpirically(core.RunConfig{
		Horizon: e.horizon, PeerCap: 400, Replicas: 1, Seed: seed,
		Workers: 1, Context: ctx,
	})
	if err != nil {
		return sweep.Cell{}, err
	}
	class := "b"
	switch sys.Verdict() {
	case stability.PositiveRecurrent:
		class = "s"
	case stability.Transient:
		class = "t"
	}
	if class != "b" && emp.Agrees(sys.Verdict()) {
		class = string(class[0] - 'a' + 'A')
	}
	cell := sweep.Cell{Class: class, Value: emp.MeanFinalN}
	cell.SetFinite("final_n", emp.MeanFinalN)
	cell.SetFinite("occupancy", emp.MeanOccupancy)
	return cell, nil
}
