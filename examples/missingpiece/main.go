// Missing-piece syndrome: start a transient system from a large one-club
// (every peer holds all pieces except piece 1) and watch the population
// grow linearly at the rate ∆_{F−{1}} predicted by the branching-process
// analysis of Section VI.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	club, horizon, interval := 500, 120.0, 6.0
	if quick {
		club, horizon, interval = 150, 40.0, 2.0
	}
	params := model.Params{
		K:     3,
		Us:    1,
		Mu:    1,
		Gamma: 2,
		Lambda: map[pieceset.Set]float64{
			pieceset.Empty: 7, // above the threshold of 2: transient
		},
	}
	sys, err := core.NewSystem(params)
	if err != nil {
		return err
	}
	fmt.Println("parameters:", params)
	fmt.Println("Theorem 1 verdict:", sys.Verdict())
	delta, err := sys.OneClubGrowthRate()
	if err != nil {
		return err
	}
	fmt.Printf("predicted one-club growth rate ∆ = %.3f peers/unit time\n\n", delta)

	oneClub := pieceset.Full(params.K).Without(1)
	swarm, err := sys.NewSwarm(
		sim.WithSeed(42),
		sim.WithInitialPeers(map[pieceset.Set]int{oneClub: club}),
	)
	if err != nil {
		return err
	}
	trace, err := swarm.Trace(horizon, interval, 1, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %8s %10s %10s\n", "t", "N", "one-club", "missing-1")
	xs := make([]float64, len(trace))
	ys := make([]float64, len(trace))
	for i, pt := range trace {
		xs[i], ys[i] = pt.T, float64(pt.N)
		fmt.Printf("%8.1f %8d %10d %10d\n", pt.T, pt.N, pt.OneClub, pt.Missing)
	}
	_, slope, r2, err := dist.LinearFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Printf("\nfitted dN/dt = %.3f (R² = %.3f) vs predicted ∆ = %.3f\n", slope, r2, delta)
	fmt.Println("the one-club never shrinks: piece 1 stays rare — the missing piece syndrome")
	return nil
}
