// Missing-piece syndrome: start a transient system from a large one-club
// (every peer holds all pieces except piece 1) and watch the population
// grow linearly at the rate ∆_{F−{1}} predicted by the branching-process
// analysis of Section VI. The trajectory is measured by the streaming
// observation pipeline (internal/obs): decimating series for N and the
// one-club, plus a hitting-time watcher for the population doubling — no
// hand-rolled sampling loop.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pieceset"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	club, horizon, points := 500, 120.0, 20
	if quick {
		club, horizon, points = 150, 40.0, 10
	}
	params := model.Params{
		K:     3,
		Us:    1,
		Mu:    1,
		Gamma: 2,
		Lambda: map[pieceset.Set]float64{
			pieceset.Empty: 7, // above the threshold of 2: transient
		},
	}
	sys, err := core.NewSystem(params)
	if err != nil {
		return err
	}
	fmt.Println("parameters:", params)
	fmt.Println("Theorem 1 verdict:", sys.Verdict())
	delta, err := sys.OneClubGrowthRate()
	if err != nil {
		return err
	}
	fmt.Printf("predicted one-club growth rate ∆ = %.3f peers/unit time\n\n", delta)

	oneClub := pieceset.Full(params.K).Without(1)
	swarm, err := sys.NewSwarm(
		sim.WithSeed(42),
		sim.WithInitialPeers(map[pieceset.Set]int{oneClub: club}),
	)
	if err != nil {
		return err
	}

	// The observer pipeline: two decimating series on a shared ladder
	// bounded at the horizon (so the final event's overshoot cannot leak
	// post-horizon points into the slope fit) and a watcher marking when
	// the population doubles.
	dt := horizon / float64(points)
	nSeries := obs.NewBoundedSeries("n", 0, dt, points+2, horizon, func() float64 { return float64(swarm.N()) })
	clubSeries := obs.NewBoundedSeries("one_club", 0, dt, points+2, horizon, func() float64 { return float64(swarm.OneClub(1)) })
	doubled := obs.NewPopulationWatch("doubled", 2*float64(club), false)
	set := obs.NewSet(nSeries, clubSeries, doubled)
	swarm.SetTap(set)
	if _, err := swarm.RunUntil(horizon, 0); err != nil {
		return err
	}
	set.Seal(horizon)

	// Plot the one-club trajectory: it only grows — piece 1 stays rare.
	fmt.Printf("one-club size (decimated to %d points, █ ≈ %d peers):\n", len(clubSeries.Points()), plotScale(clubSeries))
	plot(clubSeries)

	xs := make([]float64, len(nSeries.Points()))
	ys := make([]float64, len(nSeries.Points()))
	for i, pt := range nSeries.Points() {
		xs[i], ys[i] = pt.T, pt.V
	}
	_, slope, r2, err := dist.LinearFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Printf("\nfitted dN/dt = %.3f (R² = %.3f) vs predicted ∆ = %.3f\n", slope, r2, delta)
	if doubled.Hit() {
		fmt.Printf("population doubled (≥ %d peers) at t = %.1f — the watcher's event mark\n", 2*club, doubled.Time())
	}
	fmt.Println("the one-club never shrinks: piece 1 stays rare — the missing piece syndrome")
	return nil
}

// plotScale picks the peers-per-block scale for the ASCII plot.
func plotScale(s *obs.Series) int {
	max := 0.0
	for _, pt := range s.Points() {
		if pt.V > max {
			max = pt.V
		}
	}
	scale := int(max / 60)
	if scale < 1 {
		scale = 1
	}
	return scale
}

// plot renders a series as one bar row per decimated point.
func plot(s *obs.Series) {
	scale := plotScale(s)
	for _, pt := range s.Points() {
		bar := strings.Repeat("█", int(pt.V)/scale)
		fmt.Printf("t=%6.1f %6d |%s\n", pt.T, int(pt.V), bar)
	}
}
