// Flash crowd: the paper models the steady phase hours after a flash crowd.
// This example shows the hand-off — a burst of 2000 empty peers arrives at
// t = 0 on a fresh torrent, the swarm works the backlog down, and then
// settles into the stationary regime whose stability Theorem 1 governs.
// The drain is repeated under each piece-selection policy.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := model.Params{
		K:     4,
		Us:    2,
		Mu:    1,
		Gamma: 2,
		Lambda: map[pieceset.Set]float64{
			pieceset.Empty: 0.5, // steady trickle after the crowd
		},
	}
	sys, err := core.NewSystem(params)
	if err != nil {
		return err
	}
	fmt.Println("parameters:", params)
	fmt.Println("steady-state verdict (Theorem 1):", sys.Verdict())
	fmt.Println("flash crowd: 2000 empty peers at t = 0")
	fmt.Println()

	const crowd = 2000
	for _, policy := range sim.AllPolicies() {
		swarm, err := sys.NewSwarm(
			sim.WithSeed(11),
			sim.WithPolicy(policy),
			sim.WithInitialPeers(map[pieceset.Set]int{pieceset.Empty: crowd}),
		)
		if err != nil {
			return err
		}
		// Drain time: first instant the backlog is within 2x of the steady
		// state level (~single digits here).
		var drained float64 = -1
		for swarm.Now() < 3000 {
			if err := swarm.Step(); err != nil {
				return err
			}
			if drained < 0 && swarm.N() <= 20 {
				drained = swarm.Now()
			}
		}
		st := swarm.Stats()
		fmt.Printf("%-18s drained to N≤20 at t=%7.1f | served %d peers | %d uploads (%.1f%% contact efficiency)\n",
			policy.Name(), drained, st.Departures, st.Uploads,
			100*float64(st.Uploads)/float64(st.Uploads+st.NoOps))
	}
	fmt.Println()
	fmt.Println("all policies drain the crowd — Theorem 14 in action: usefulness, not")
	fmt.Println("cleverness, determines the stability region (efficiency differs, though)")
	return nil
}
