// Flash crowd: the paper models the steady phase hours after a flash crowd.
// This example shows the hand-off two ways. First the classic view — a
// burst of empty peers present at t = 0 on a fresh torrent, drained under
// each piece-selection policy. Then the kernel's scenario layer simulates
// the crowd as it actually happens: a time-varying arrival ramp
// (kernel.FlashCrowd) that the stable swarm absorbs and recovers from.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	crowd, horizon := 2000, 3000.0
	if quick {
		crowd, horizon = 300, 400.0
	}
	params := model.Params{
		K:     4,
		Us:    2,
		Mu:    1,
		Gamma: 2,
		Lambda: map[pieceset.Set]float64{
			pieceset.Empty: 0.5, // steady trickle after the crowd
		},
	}
	sys, err := core.NewSystem(params)
	if err != nil {
		return err
	}
	fmt.Println("parameters:", params)
	fmt.Println("steady-state verdict (Theorem 1):", sys.Verdict())
	fmt.Printf("flash crowd: %d empty peers at t = 0\n", crowd)
	fmt.Println()

	for _, policy := range sim.AllPolicies() {
		swarm, err := sys.NewSwarm(
			sim.WithSeed(11),
			sim.WithPolicy(policy),
			sim.WithInitialPeers(map[pieceset.Set]int{pieceset.Empty: crowd}),
		)
		if err != nil {
			return err
		}
		// Drain time: first instant the backlog is within 2x of the steady
		// state level (~single digits here).
		var drained float64 = -1
		for swarm.Now() < horizon {
			if err := swarm.Step(); err != nil {
				return err
			}
			if drained < 0 && swarm.N() <= 20 {
				drained = swarm.Now()
			}
		}
		st := swarm.Stats()
		fmt.Printf("%-18s drained to N≤20 at t=%7.1f | served %d peers | %d uploads (%.1f%% contact efficiency)\n",
			policy.Name(), drained, st.Departures, st.Uploads,
			100*float64(st.Uploads)/float64(st.Uploads+st.NoOps))
	}
	fmt.Println()
	fmt.Println("all policies drain the crowd — Theorem 14 in action: usefulness, not")
	fmt.Println("cleverness, determines the stability region (efficiency differs, though)")

	// The scenario layer: the same crowd as a time-varying arrival ramp.
	// Arrivals multiply by `peak` over the ramp window; the kernel thins
	// the inhomogeneous stream exactly. The trapezoidal ramp integrates to
	// (peak−1)·λ·(Rise/2 + Hold + Fall/2) extra arrivals — solve that for
	// the peak that injects the same expected headcount as the burst.
	start, window := horizon/10, horizon/10
	peak := 1 + float64(crowd)/(params.LambdaTotal()*0.75*window)
	ramp := kernel.FlashCrowd{
		Start: start, Rise: window / 4, Hold: window / 2, Fall: window / 4, Peak: peak,
	}
	swarm, err := sys.NewSwarm(sim.WithSeed(11),
		sim.WithScenario(kernel.Scenario{Arrival: ramp}))
	if err != nil {
		return err
	}
	peakN, peakT := 0, 0.0
	for swarm.Now() < horizon {
		if err := swarm.Step(); err != nil {
			return err
		}
		if swarm.N() > peakN {
			peakN, peakT = swarm.N(), swarm.Now()
		}
	}
	fmt.Println()
	fmt.Printf("scenario layer: ×%.0f arrival ramp over t ∈ [%.0f, %.0f] (same expected crowd)\n",
		peak, start, start+window)
	fmt.Printf("  population peaked at N = %d (t = %.1f), back to N = %d by t = %.0f\n",
		peakN, peakT, swarm.N(), horizon)
	fmt.Printf("  %d arrivals thinned against the ramp bound; verdict unchanged — the\n",
		swarm.Stats().Thinned)
	fmt.Println("  stationary theory governs everything outside the event window")
	return nil
}
