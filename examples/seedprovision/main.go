// Seed provisioning: the operator's question. Given a measured arrival
// rate and peer behaviour, how much fixed-seed capacity — or how much peer
// dwelling — keeps the swarm stable, and what does the steady state look
// like? This example answers with the boundary finders and the exact
// solver.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/sim"
	"repro/internal/stability"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	burnIn, horizon := 500.0, 10500.0
	if quick {
		burnIn, horizon = 50.0, 1050.0
	}
	// Measured workload: λ0 = 3 empty peers per unit time, K = 4 pieces,
	// peers upload at µ = 1 and leave fairly quickly (γ = 4); the operator
	// provisioned a seed at U_s = 3.
	p := model.Params{
		K: 4, Us: 3, Mu: 1, Gamma: 4,
		Lambda: map[pieceset.Set]float64{pieceset.Empty: 3},
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		return err
	}
	fmt.Println("workload:", p)
	fmt.Println("verdict :", sys.Verdict())

	// Question 1: how much more load can this deployment take?
	scale, err := stability.CriticalScale(p)
	if err != nil {
		return err
	}
	fmt.Printf("\nheadroom: arrivals can grow ×%.3f before the missing-piece syndrome\n", scale)

	// Question 2: how much dwelling would make the system load-proof?
	gCrit, err := stability.CriticalGamma(p)
	if err != nil {
		return err
	}
	if math.IsInf(gCrit, 1) {
		fmt.Println("dwelling: not needed — stable even with instant departures")
	} else {
		fmt.Printf("dwelling: stable at this load for γ < %.3f (mean dwell > %.3f)\n",
			gCrit, 1/gCrit)
	}
	fmt.Printf("          and γ ≤ µ = %.3g makes it stable at ANY load (one-more-piece corollary)\n", p.Mu)

	// Question 3: what seed capacity removes the dependence on dwelling?
	// Us must satisfy λ_total < (Us + 0)/(1−µ/γ) when peers leave at γ=∞.
	needed := p.LambdaTotal() // with γ=∞, threshold is exactly Us
	fmt.Printf("seed only: with instant departures the fixed seed alone needs U_s > %.3f (now %.3f)\n",
		needed, p.Us)

	// Question 4: steady-state quality at the current operating point.
	// (K = 4 is beyond the exact solver's state space; simulate instead.)
	swarm, err := sys.NewSwarm(sim.WithSeed(5))
	if err != nil {
		return err
	}
	if _, err := swarm.RunUntil(burnIn, 0); err != nil { // burn-in
		return err
	}
	swarm.ResetOccupancy()
	if _, err := swarm.RunUntil(horizon, 0); err != nil {
		return err
	}
	fmt.Printf("\nsteady state now: E[N] ≈ %.2f peers, mean time in system ≈ %.2f\n",
		swarm.MeanPeers(), sys.MeanSojournTime(swarm.MeanPeers()))
	fmt.Printf("                  %d peers served, %.1f%% of contacts carried a useful piece\n",
		swarm.Stats().Departures,
		100*float64(swarm.Stats().Uploads)/float64(swarm.Stats().Uploads+swarm.Stats().NoOps))
	return nil
}
