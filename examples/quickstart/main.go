// Quickstart: define a swarm with the paper's parameters, ask Theorem 1 for
// its stability verdict, simulate a sample path, and cross-check the
// simulated mean population against the exact truncated-chain solution.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short horizons (for smoke tests)")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	burnIn, horizon, nmax := 500.0, 10500.0, 40
	if quick {
		burnIn, horizon, nmax = 50.0, 1050.0, 20
	}
	// A two-piece file; empty peers arrive at rate 0.8; the fixed seed
	// uploads at rate 1; peers contact at rate 1; a finished peer dwells
	// as a peer seed for mean time 1/γ = 0.5 before leaving.
	params := model.Params{
		K:     2,
		Us:    1,
		Mu:    1,
		Gamma: 2,
		Lambda: map[pieceset.Set]float64{
			pieceset.Empty: 0.8,
		},
	}
	sys, err := core.NewSystem(params)
	if err != nil {
		return err
	}
	fmt.Println("parameters:", params)
	fmt.Println("Theorem 1 verdict:", sys.Verdict())
	a := sys.Stability()
	for piece := 1; piece <= params.K; piece++ {
		fmt.Printf("  piece %d threshold: λ_total < %.3f\n", piece, a.Thresholds[piece])
	}

	// Simulate one long sample path.
	swarm, err := sys.NewSwarm(sim.WithSeed(7))
	if err != nil {
		return err
	}
	if _, err := swarm.RunUntil(burnIn, 0); err != nil { // burn-in
		return err
	}
	swarm.ResetOccupancy()
	if _, err := swarm.RunUntil(horizon, 0); err != nil {
		return err
	}
	fmt.Printf("simulated E[N] over %.0f time units: %.3f\n", horizon-burnIn, swarm.MeanPeers())
	fmt.Printf("mean download+dwell time (Little): %.3f\n",
		sys.MeanSojournTime(swarm.MeanPeers()))

	// Exact answer from the truncated generator for comparison.
	exact, err := sys.ExactStationary(nmax)
	if err != nil {
		return err
	}
	fmt.Printf("exact E[N] (truncated chain):       %.3f  (boundary mass %.2g)\n",
		exact.MeanN, exact.BoundaryMass)
	return nil
}
