package repro

// One benchmark per reproduction experiment (E1–E12, quick scale), plus
// micro-benchmarks for the hot paths and the ablation benchmarks called out
// in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/borderline"
	"repro/internal/codedsim"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/gf"
	"repro/internal/kernel"
	"repro/internal/lyapunov"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/pieceset"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stability"
)

// benchExperiment runs one registered experiment per iteration at quick
// scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Config{Quick: true, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Example1(b *testing.B)            { benchExperiment(b, "E1") }
func BenchmarkE2Example2(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3Example3(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4OneMorePiece(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MissingPiece(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6PolicyInsensitivity(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7NetworkCoding(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Borderline(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9FastRecovery(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Validation(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11Lyapunov(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12DeltaEquivalence(b *testing.B)   { benchExperiment(b, "E12") }

// --- micro-benchmarks -----------------------------------------------------

func benchParams(k int) model.Params {
	return model.Params{
		K: k, Us: 1, Mu: 1, Gamma: 2,
		Lambda: map[pieceset.Set]float64{pieceset.Empty: 1},
	}
}

// BenchmarkSwarmStep measures raw event throughput of the type-count
// simulator at a steady population of ~1000 peers.
func BenchmarkSwarmStep(b *testing.B) {
	p := benchParams(4)
	club := pieceset.Full(4).Without(1)
	s, err := sim.New(p, sim.WithSeed(1),
		sim.WithInitialPeers(map[pieceset.Set]int{club: 1000}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodedStep measures event throughput of the coded simulator.
func BenchmarkCodedStep(b *testing.B) {
	f := gf.MustNew(4)
	p := stability.CodedParams{
		K: 4, Field: f, Us: 1, Mu: 1, Gamma: 2,
		Arrivals: []stability.CodedArrival{{V: gf.ZeroSubspace(f, 4), Rate: 1}},
	}
	s, err := codedsim.New(p, codedsim.WithSeed(1),
		codedsim.WithInitialPeers(gf.ZeroSubspace(f, 4), 500))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorTransitions measures generator-row enumeration, the
// exact solver's inner loop.
func BenchmarkGeneratorTransitions(b *testing.B) {
	p := benchParams(4)
	x := model.NewState(4)
	for i := range x {
		x[i] = i % 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Transitions(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationarySolve measures the full truncated solve for K=1.
func BenchmarkStationarySolve(b *testing.B) {
	p := benchParams(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := markov.Build(p, 40)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Stationary(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLyapunovDrift measures one exact drift evaluation QW(x).
func BenchmarkLyapunovDrift(b *testing.B) {
	p := benchParams(3)
	c, err := lyapunov.DefaultConstants(p)
	if err != nil {
		b.Fatal(err)
	}
	e, err := lyapunov.New(p, c)
	if err != nil {
		b.Fatal(err)
	}
	x := model.NewState(3)
	x[int(pieceset.Full(3).Without(1))] = 1000
	x[int(pieceset.Full(3))] = 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Drift(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGFMul measures field multiplication (table lookups).
func BenchmarkGFMul(b *testing.B) {
	f := gf.MustNew(64)
	b.ReportAllocs()
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, 37)
		if acc == 0 {
			acc = 1
		}
	}
	_ = acc
}

// BenchmarkSubspaceAdd measures subspace extension with RREF.
func BenchmarkSubspaceAdd(b *testing.B) {
	f := gf.MustNew(8)
	r := rng.New(1)
	const k = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := gf.ZeroSubspace(f, k)
		for j := 0; j < k; j++ {
			v := make(gf.Vec, k)
			for t := range v {
				v[t] = r.Intn(8)
			}
			var err error
			s, err = s.Add(v)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassify measures the Theorem 1 classification.
func BenchmarkClassify(b *testing.B) {
	p := benchParams(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stability.Classify(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (DESIGN.md §6) ------------------------------------

// perPeerSwarm is a deliberately naive reference simulator that stores one
// record per peer instead of type counts; the ablation quantifies what the
// type-count representation buys.
type perPeerSwarm struct {
	p     model.Params
	r     *rng.RNG
	peers []pieceset.Set
	now   float64
}

func (s *perPeerSwarm) step() {
	full := pieceset.Full(s.p.K)
	n := len(s.peers)
	lambda := s.p.LambdaTotal()
	seed := 0.0
	if n > 0 {
		seed = s.p.Us
	}
	peer := s.p.Mu * float64(n)
	dep := 0.0
	seeds := 0
	for _, c := range s.peers {
		if c == full {
			seeds++
		}
	}
	dep = s.p.Gamma * float64(seeds)
	total := lambda + seed + peer + dep
	s.now += s.r.Exp(total)
	u := s.r.Float64() * total
	switch {
	case u < lambda:
		s.peers = append(s.peers, pieceset.Empty)
	case u < lambda+seed:
		i := s.r.Intn(n)
		useful := s.peers[i].Complement(s.p.K)
		if !useful.IsEmpty() {
			s.peers[i] = s.peers[i].With(useful.NthPiece(s.r.Intn(useful.Size())))
		}
	case u < lambda+seed+peer:
		up, tg := s.r.Intn(n), s.r.Intn(n)
		useful := s.peers[up].Minus(s.peers[tg])
		if !useful.IsEmpty() {
			s.peers[tg] = s.peers[tg].With(useful.NthPiece(s.r.Intn(useful.Size())))
		}
	default:
		for i, c := range s.peers {
			if c == full {
				s.peers[i] = s.peers[len(s.peers)-1]
				s.peers = s.peers[:len(s.peers)-1]
				break
			}
		}
	}
}

// BenchmarkAblationStateReprTypeCounts is the production representation.
func BenchmarkAblationStateReprTypeCounts(b *testing.B) {
	p := benchParams(4)
	s, err := sim.New(p, sim.WithSeed(1), sim.WithInitialPeers(
		map[pieceset.Set]int{pieceset.Full(4).Without(1): 2000}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStateReprPerPeer is the per-peer reference at the same
// population.
func BenchmarkAblationStateReprPerPeer(b *testing.B) {
	p := benchParams(4)
	s := &perPeerSwarm{p: p, r: rng.New(1)}
	club := pieceset.Full(4).Without(1)
	for i := 0; i < 2000; i++ {
		s.peers = append(s.peers, club)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// BenchmarkAblationEventSamplingLinear measures the seed's linear walk
// over occupied types for weighted peer selection (replaced in production
// by the kernel's Fenwick sampler — see BenchmarkPeerSelection*).
func BenchmarkAblationEventSamplingLinear(b *testing.B) {
	benchSampling(b, false)
}

// BenchmarkAblationEventSamplingCumulative measures a rebuilt cumulative
// array with binary search per draw — faster asymptotically but it pays a
// rebuild per event because counts change every event.
func BenchmarkAblationEventSamplingCumulative(b *testing.B) {
	benchSampling(b, true)
}

func benchSampling(b *testing.B, cumulative bool) {
	b.Helper()
	r := rng.New(7)
	const types = 64
	counts := make([]int, types)
	total := 0
	for i := range counts {
		counts[i] = 1 + r.Intn(50)
		total += counts[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		target := r.Intn(total)
		if cumulative {
			cum := make([]int, types)
			run := 0
			for j, c := range counts {
				run += c
				cum[j] = run
			}
			lo, hi := 0, types-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] <= target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			sink += lo
			continue
		}
		for j, c := range counts {
			target -= c
			if target < 0 {
				sink += j
				break
			}
		}
	}
	_ = sink
}

// BenchmarkAblationSubspaceKeyCanonical measures map keying through the
// canonical RREF Key (production).
func BenchmarkAblationSubspaceKeyCanonical(b *testing.B) {
	f := gf.MustNew(4)
	r := rng.New(3)
	subs := randomSubspaces(b, f, 5, 200, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[string]int)
		for _, s := range subs {
			m[s.Key()]++
		}
	}
}

// BenchmarkAblationSubspaceKeyStructural measures the alternative keying by
// pairwise subset tests (what one must do without a canonical form).
func BenchmarkAblationSubspaceKeyStructural(b *testing.B) {
	f := gf.MustNew(4)
	r := rng.New(3)
	subs := randomSubspaces(b, f, 5, 200, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reps []*gf.Subspace
		counts := make([]int, 0, 16)
		for _, s := range subs {
			found := -1
			for j, rep := range reps {
				a, err := s.SubsetOf(rep)
				if err != nil {
					b.Fatal(err)
				}
				c, err := rep.SubsetOf(s)
				if err != nil {
					b.Fatal(err)
				}
				if a && c {
					found = j
					break
				}
			}
			if found >= 0 {
				counts[found]++
			} else {
				reps = append(reps, s)
				counts = append(counts, 1)
			}
		}
	}
}

func randomSubspaces(b *testing.B, f *gf.Field, k, n int, r *rng.RNG) []*gf.Subspace {
	b.Helper()
	out := make([]*gf.Subspace, 0, n)
	for i := 0; i < n; i++ {
		s := gf.ZeroSubspace(f, k)
		for j := 0; j < r.Intn(3); j++ {
			v := make(gf.Vec, k)
			for t := range v {
				v[t] = r.Intn(f.Order())
			}
			var err error
			s, err = s.Add(v)
			if err != nil {
				b.Fatal(err)
			}
		}
		out = append(out, s)
	}
	return out
}

// --- kernel sampler scaling (linear scan vs Fenwick) -----------------------
//
// The seed simulators selected the contacted peer/type by a linear
// cumulative scan over occupied slots; the kernel replaced it with a
// Fenwick-tree sampler. These pairs measure both on identical populations
// from 1e2 to 1e6 occupied slots; EXPERIMENTS.md records a summary. The
// acceptance bar for the kernel refactor is ≥5× at 1e5 slots.

var selectionSizes = []int{100, 1_000, 10_000, 100_000, 1_000_000}

func selectionCounts(n int) ([]int, int) {
	r := rng.New(42)
	counts := make([]int, n)
	total := 0
	for i := range counts {
		counts[i] = 1 + r.Intn(8)
		total += counts[i]
	}
	return counts, total
}

// BenchmarkPeerSelectionLinear is the seed baseline (pickPeerType's scan).
func BenchmarkPeerSelectionLinear(b *testing.B) {
	for _, n := range selectionSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			counts, total := selectionCounts(n)
			r := rng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				target := r.Intn(total)
				for j, c := range counts {
					target -= c
					if target < 0 {
						sink += j
						break
					}
				}
			}
			_ = sink
		})
	}
}

// BenchmarkPeerSelectionFenwick is the production kernel sampler.
func BenchmarkPeerSelectionFenwick(b *testing.B) {
	for _, n := range selectionSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			counts, _ := selectionCounts(n)
			var sampler kernel.Counts[int]
			for i, c := range counts {
				sampler.Add(i, c)
			}
			r := rng.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				k, _ := sampler.Pick(r)
				sink += k
			}
			_ = sink
		})
	}
}

// BenchmarkSwarmStepWideOneClub measures end-to-end event throughput of
// the type-count simulator in a many-types regime (K=16 arrivals spread
// across types), where the old linear scan dominated the event cost.
func BenchmarkSwarmStepWideOneClub(b *testing.B) {
	p := model.Params{
		K: 16, Us: 1, Mu: 1, Gamma: 2,
		Lambda: map[pieceset.Set]float64{pieceset.Empty: 4},
	}
	initial := map[pieceset.Set]int{}
	r := rng.New(5)
	full := pieceset.Full(16)
	for i := 0; i < 3000; i++ {
		// A random non-full type per peer: a wide occupied-type front.
		c := pieceset.Set(r.Intn(1 << 16))
		if c == full {
			c = c.Without(1)
		}
		initial[c]++
	}
	s, err := sim.New(p, sim.WithSeed(1), sim.WithInitialPeers(initial))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBorderlineTopLayer measures raw transition throughput of the
// µ=∞ embedded chain on its top layer (Figure 3).
func BenchmarkBorderlineTopLayer(b *testing.B) {
	c, err := borderline.New(3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SetState(1_000_000, 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func BenchmarkE13QuasiStability(b *testing.B) { benchExperiment(b, "E13") }

func BenchmarkE14HeavyTraffic(b *testing.B) { benchExperiment(b, "E14") }

// --- engine scaling benchmarks -------------------------------------------
//
// Serial-vs-parallel pairs for the Monte-Carlo engine: the same replicated
// workload with a single worker and with one worker per core. The ratio is
// the perf trajectory's baseline for parallel replica execution.

// benchEngineReplicas runs a fixed engine job — replicated type-count
// swarms to a fixed horizon — at the given worker count.
func benchEngineReplicas(b *testing.B, workers int) {
	b.Helper()
	job := engine.Job{
		Name: "bench",
		Backend: &engine.SwarmBackend{
			Params: benchParams(3),
			Measure: func(ctx context.Context, rep int, sw *sim.Swarm) (engine.Sample, error) {
				if _, err := sw.RunUntil(200, 0); err != nil {
					return nil, err
				}
				return engine.Sample{"final_n": float64(sw.N())}, nil
			},
		},
		Replicas: 2 * runtime.NumCPU(),
		Seed:     1,
		Workers:  workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReplicasSerial(b *testing.B) { benchEngineReplicas(b, 1) }

func BenchmarkEngineReplicasParallel(b *testing.B) { benchEngineReplicas(b, runtime.NumCPU()) }

// benchExperimentWorkers runs one registered experiment at quick scale with
// an explicit engine worker count.
func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Config{Quick: true, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// E13 is the representative replicated experiment: five variants, each a
// replica pool of onset detections.
func BenchmarkE13Serial(b *testing.B) { benchExperimentWorkers(b, "E13", 1) }

func BenchmarkE13Parallel(b *testing.B) { benchExperimentWorkers(b, "E13", runtime.NumCPU()) }

// E1 is the representative empirical-classification sweep (six points ×
// replica pools through core.ClassifyEmpirically).
func BenchmarkE1Serial(b *testing.B) { benchExperimentWorkers(b, "E1", 1) }

func BenchmarkE1Parallel(b *testing.B) { benchExperimentWorkers(b, "E1", runtime.NumCPU()) }
