// Package repro is a full Go reproduction of Zhu & Hajek, "Stability of a
// Peer-to-Peer Communication System" (PODC 2011; arXiv:1110.2753): the
// stochastic model of an unstructured P2P swarm, the exact stability region
// of Theorem 1 and its four extensions (general piece-selection policies,
// network coding, fast recovery, and the µ = ∞ borderline process), an
// event-driven CTMC simulator validated against an exact truncated-
// generator solver, a parallel Monte-Carlo engine that fans replicated
// runs across a worker pool with bit-for-bit deterministic output, and
// the experiment harness E1–E14 that regenerates every quantitative
// artifact in the paper.
//
// Start with internal/core (the System facade), or run:
//
//	go run ./cmd/stabilitycheck -k 1 -us 1 -mu 1 -gamma 2 -lambda0 1.5
//	go run ./cmd/p2psim -k 3 -horizon 500
//	go run ./cmd/experiments -quick
//
// See DESIGN.md for the architecture and the per-experiment index, and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package repro
