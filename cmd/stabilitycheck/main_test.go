package main

import (
	"strings"
	"testing"
)

func TestRunStable(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-k", "1", "-us", "1", "-mu", "1", "-gamma", "2", "-lambda0", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"positive-recurrent", "piece 1*", "margin"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTransientShowsGrowthRate(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-lambda0", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "transient") || !strings.Contains(out, "∆_{F−{1}}") {
		t.Errorf("transient output incomplete:\n%s", out)
	}
}

func TestRunGammaLeMuBranch(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-gamma", "0.5", "-lambda0", "100"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "γ ≤ µ") || !strings.Contains(out, "positive-recurrent") {
		t.Errorf("γ ≤ µ output incomplete:\n%s", out)
	}
}

func TestRunBlockedPiece(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-k", "2", "-us", "0", "-gamma", "0.5", "-arrive", "1=1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "blocked") {
		t.Errorf("blocked piece not reported:\n%s", b.String())
	}
}

func TestRunGammaInfArrivals(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-k", "4", "-mu", "1", "-gamma", "inf", "-us", "0",
		"-arrive", "1,2=1", "-arrive", "3,4=0.6",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "positive-recurrent") {
		t.Errorf("Example 2 stable point misclassified:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-gamma", "bogus"}, &b); err == nil {
		t.Error("bad gamma accepted")
	}
	if err := run([]string{"-k", "0"}, &b); err == nil {
		t.Error("bad K accepted")
	}
	if err := run([]string{"-notaflag"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCriticalFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-lambda0", "1", "-critical"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "boundary") || !strings.Contains(out, "critical γ") {
		t.Errorf("critical output incomplete:\n%s", out)
	}
	// λ0 = 1 at Us=1, µ=1, γ=2: the boundary sits at scale 2.
	if !strings.Contains(out, "×2") {
		t.Errorf("expected critical scale 2 in output:\n%s", out)
	}
}

func TestRunCriticalAlwaysStable(t *testing.T) {
	var b strings.Builder
	// λ0 < U_s: stable even at γ = ∞.
	if err := run([]string{"-lambda0", "0.5", "-critical"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "γ = ∞") {
		t.Errorf("expected γ=∞ note:\n%s", b.String())
	}
}
