// Command stabilitycheck evaluates Theorem 1 for a parameter point given
// on the command line and prints the verdict, the per-piece thresholds and
// the ∆_S diagnostics.
//
// Examples:
//
//	stabilitycheck -k 1 -us 1 -mu 1 -gamma 2 -lambda0 1.5
//	stabilitycheck -k 4 -mu 1 -gamma inf -arrive 1,2=1 -arrive 3,4=0.6
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stability"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stabilitycheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stabilitycheck", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 1, "number of pieces K")
		us       = fs.Float64("us", 1, "fixed seed upload rate U_s")
		mu       = fs.Float64("mu", 1, "peer contact rate µ")
		gammaStr = fs.String("gamma", "2", "peer-seed departure rate γ (or 'inf')")
		lambda0  = fs.Float64("lambda0", 1, "empty-type arrival rate (used when no -arrive flags)")
		critical = fs.Bool("critical", false, "also locate the stability boundary (critical arrival scale and critical γ)")
		arrivals cli.ArrivalFlags
		tel      cli.Telemetry
	)
	fs.Var(&arrivals, "arrive", "arrival spec PIECES=RATE (repeatable), e.g. 1,2=0.5 or empty=1")
	tel.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tel.Start("stabilitycheck", os.Stderr); err != nil {
		return err
	}
	defer tel.Close()
	gamma, err := cli.ParseGamma(*gammaStr)
	if err != nil {
		return err
	}
	p, err := cli.BuildParams(*k, *us, *mu, gamma, *lambda0, &arrivals)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		return err
	}
	a := sys.Stability()
	fmt.Fprintf(out, "parameters: %s\n", p)
	fmt.Fprintf(out, "λ_total   : %g\n", p.LambdaTotal())
	fmt.Fprintf(out, "verdict   : %s\n", a.Verdict)
	if *critical {
		printCritical(out, p)
	}
	if a.GammaLeMu {
		fmt.Fprintln(out, "branch    : γ ≤ µ (stability ⇔ every piece can enter)")
		if a.BlockedPiece != 0 {
			fmt.Fprintf(out, "blocked   : piece %d can never enter the system\n", a.BlockedPiece)
		}
		return tel.Finish()
	}
	fmt.Fprintf(out, "branch    : µ < γ (missing-piece thresholds, eq. (3))\n")
	for piece := 1; piece <= p.K; piece++ {
		marker := " "
		if piece == a.CriticalPiece {
			marker = "*"
		}
		fmt.Fprintf(out, "  piece %d%s: λ_total < %g\n", piece, marker, a.Thresholds[piece])
	}
	fmt.Fprintf(out, "margin    : %g (min threshold − λ_total)\n", a.Margin)
	if a.Verdict == stability.Transient {
		g, err := sys.OneClubGrowthRate()
		if err == nil {
			fmt.Fprintf(out, "∆_{F−{%d}} : %g (predicted one-club growth rate)\n",
				a.CriticalPiece, g)
		}
	}
	return tel.Finish()
}

// printCritical reports the boundary location along two rays: scaling all
// arrival rates, and varying γ.
func printCritical(out io.Writer, p model.Params) {
	if scale, err := stability.CriticalScale(p); err == nil {
		fmt.Fprintf(out, "boundary  : arrival rates ×%g cross the stability boundary\n", scale)
	} else {
		fmt.Fprintf(out, "boundary  : no arrival scaling destabilizes this shape (%v)\n", err)
	}
	if g, err := stability.CriticalGamma(p); err == nil {
		if math.IsInf(g, 1) {
			fmt.Fprintln(out, "critical γ: none — stable even with instant departures (γ = ∞)")
		} else {
			fmt.Fprintf(out, "critical γ: %g (stable for γ < %g, i.e. mean dwell > %g)\n", g, g, 1/g)
		}
	} else {
		fmt.Fprintf(out, "critical γ: %v\n", err)
	}
}
