// Command p2psim runs one sample path of the P2P swarm CTMC and prints a
// sampled trace plus summary statistics, alongside the Theorem 1 verdict
// for the same parameters.
//
// Example:
//
//	p2psim -k 3 -us 1 -mu 1 -gamma 2 -lambda0 2 -horizon 500 -policy rarest-first
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p2psim:", err)
		os.Exit(1)
	}
}

func policyByName(name string) (sim.Policy, error) {
	for _, p := range sim.AllPolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (have: random-useful, rarest-first, most-common-first, sequential-lowest)", name)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2psim", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 2, "number of pieces K")
		us       = fs.Float64("us", 1, "fixed seed upload rate U_s")
		mu       = fs.Float64("mu", 1, "peer contact rate µ")
		gammaStr = fs.String("gamma", "2", "peer-seed departure rate γ (or 'inf')")
		lambda0  = fs.Float64("lambda0", 1, "empty-type arrival rate (used when no -arrive flags)")
		horizon  = fs.Float64("horizon", 200, "simulated time horizon")
		cap      = fs.Int("cap", 100000, "stop when the population reaches this size")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		polName  = fs.String("policy", "random-useful", "piece selection policy")
		samples  = fs.Int("samples", 20, "number of trace samples to print")
		csvOut   = fs.Bool("csv", false, "emit the trace as CSV instead of a table")
		arrivals cli.ArrivalFlags
	)
	fs.Var(&arrivals, "arrive", "arrival spec PIECES=RATE (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gamma, err := cli.ParseGamma(*gammaStr)
	if err != nil {
		return err
	}
	p, err := cli.BuildParams(*k, *us, *mu, gamma, *lambda0, &arrivals)
	if err != nil {
		return err
	}
	policy, err := policyByName(*polName)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		return err
	}
	sw, err := sys.NewSwarm(sim.WithSeed(*seed), sim.WithPolicy(policy))
	if err != nil {
		return err
	}
	interval := *horizon / float64(*samples)
	trace, err := sw.Trace(*horizon, interval, sys.CriticalPiece(), *cap)
	if err != nil {
		return err
	}
	if *csvOut {
		w := csv.NewWriter(out)
		if err := w.Write([]string{"t", "n", "seeds", "one_club", "missing"}); err != nil {
			return err
		}
		for _, pt := range trace {
			rec := []string{
				strconv.FormatFloat(pt.T, 'f', 4, 64),
				strconv.Itoa(pt.N),
				strconv.Itoa(pt.Seeds),
				strconv.Itoa(pt.OneClub),
				strconv.Itoa(pt.Missing),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}
	fmt.Fprintf(out, "parameters : %s\n", p)
	fmt.Fprintf(out, "theorem 1  : %s\n", sys.Verdict())
	fmt.Fprintf(out, "policy     : %s\n\n", policy.Name())
	fmt.Fprintf(out, "%10s %8s %8s %10s %10s\n", "t", "N", "seeds", "one-club", "missing")
	for _, pt := range trace {
		fmt.Fprintf(out, "%10.2f %8d %8d %10d %10d\n",
			pt.T, pt.N, pt.Seeds, pt.OneClub, pt.Missing)
	}
	st := sw.Stats()
	fmt.Fprintf(out, "\nfinal time      : %.2f\n", sw.Now())
	fmt.Fprintf(out, "final population: %d\n", sw.N())
	fmt.Fprintf(out, "mean population : %.3f\n", sw.MeanPeers())
	fmt.Fprintf(out, "mean sojourn (Little): %.3f\n", sys.MeanSojournTime(sw.MeanPeers()))
	fmt.Fprintf(out, "events: %d  arrivals: %d  departures: %d  uploads: %d  no-ops: %d\n",
		st.Events, st.Arrivals, st.Departures, st.Uploads, st.NoOps)
	return nil
}
