// Command p2psim runs replicated sample paths of the P2P swarm CTMC
// through the parallel Monte-Carlo engine and the streaming observation
// pipeline: a decimated trace of the population / peer seeds / one-club /
// missing-piece trajectory (-traj, on by default), streaming P²
// population quantiles (-quantiles), per-replica structured records as
// JSONL (-jsonl) and/or the columnar result store (-store, query with
// cmd/results), and summary statistics alongside the Theorem 1 verdict
// for the same parameters. Output is byte-identical for any -parallel
// value at a fixed seed.
//
// Examples:
//
//	p2psim -k 3 -us 1 -mu 1 -gamma 2 -lambda0 2 -horizon 500 -policy rarest-first
//	p2psim -k 2 -lambda0 3 -replicas 8 -parallel 4 -quantiles -jsonl records.jsonl
//	p2psim -replicas 64 -v -metrics-addr :9090 -report run.json  # heartbeat,
//	       # live /metrics + pprof while running, end-of-run telemetry report
//	p2psim -replicas 64 -trace trace.json  # stream a Perfetto-loadable
//	       # execution trace (inspect with tracetool summarize trace.json)
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p2psim:", err)
		os.Exit(1)
	}
}

func policyByName(name string) (sim.Policy, error) {
	for _, p := range sim.AllPolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (have: random-useful, rarest-first, most-common-first, sequential-lowest)", name)
}

// quantileTargets are the population quantiles -quantiles reports.
var quantileTargets = []float64{0.1, 0.5, 0.9}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2psim", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 2, "number of pieces K")
		us        = fs.Float64("us", 1, "fixed seed upload rate U_s")
		mu        = fs.Float64("mu", 1, "peer contact rate µ")
		gammaStr  = fs.String("gamma", "2", "peer-seed departure rate γ (or 'inf')")
		lambda0   = fs.Float64("lambda0", 1, "empty-type arrival rate (used when no -arrive flags)")
		horizon   = fs.Float64("horizon", 200, "simulated time horizon")
		cap       = fs.Int("cap", 100000, "stop a replica when its population reaches this size")
		seed      = fs.Uint64("seed", 1, "base RNG seed (replicas run on streams split from it)")
		polName   = fs.String("policy", "random-useful", "piece selection policy")
		samples   = fs.Int("samples", 20, "number of decimated trace points")
		replicas  = fs.Int("replicas", 1, "number of independent replicas")
		parallel  = fs.Int("parallel", engine.DefaultWorkers(), "engine worker pool size (1 = serial; output is identical either way)")
		traj      = fs.Bool("traj", true, "attach trajectory observers and print the decimated trajectory table")
		quantiles = fs.Bool("quantiles", false, "stream P² population quantiles and print them")
		jsonl     = fs.String("jsonl", "", "write per-replica structured records (series, marks, scalars) to this JSONL file")
		storeF    = fs.String("store", "", "write per-replica structured records to this columnar result store (query with cmd/results)")
		csvOut    = fs.Bool("csv", false, "emit the trace as CSV instead of a table")
		verbose   = fs.Bool("v", false, "print a throttled replica-progress heartbeat to stderr")
		arrivals  cli.ArrivalFlags
		tel       cli.Telemetry
	)
	fs.Var(&arrivals, "arrive", "arrival spec PIECES=RATE (repeatable)")
	tel.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gamma, err := cli.ParseGamma(*gammaStr)
	if err != nil {
		return err
	}
	p, err := cli.BuildParams(*k, *us, *mu, gamma, *lambda0, &arrivals)
	if err != nil {
		return err
	}
	policy, err := policyByName(*polName)
	if err != nil {
		return err
	}
	if *replicas < 1 || *parallel < 1 {
		return fmt.Errorf("-replicas and -parallel must be >= 1")
	}
	if *samples < 2 {
		return fmt.Errorf("-samples must be >= 2, got %d", *samples)
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		return err
	}
	if err := tel.Start("p2psim", os.Stderr); err != nil {
		return err
	}
	defer tel.Close()
	needTrace := *traj || *csvOut

	backend := &engine.SwarmBackend{
		Label:   "p2psim",
		Params:  p,
		Options: []sim.Option{sim.WithPolicy(policy)},
		Observe: func(rep int, sw *sim.Swarm) *obs.Set {
			set := obs.NewSet()
			if needTrace {
				dt := *horizon / float64(*samples)
				for _, s := range sw.TraceSeries(0, *horizon, dt, sys.CriticalPiece()) {
					set.Add(s)
				}
			}
			if *quantiles {
				set.Add(obs.NewQuantiles("n", func() float64 { return float64(sw.N()) }, quantileTargets...))
			}
			return set
		},
		Measure: func(ctx context.Context, rep int, sw *sim.Swarm) (engine.Sample, error) {
			reason, err := sw.RunUntil(*horizon, *cap)
			if err != nil {
				return nil, err
			}
			st := sw.Stats()
			s := engine.Sample{
				"final_t":    sw.Now(),
				"final_n":    float64(sw.N()),
				"mean_n":     sw.MeanPeers(),
				"events":     float64(st.Events),
				"arrivals":   float64(st.Arrivals),
				"departures": float64(st.Departures),
				"uploads":    float64(st.Uploads),
				"noops":      float64(st.NoOps),
			}
			if reason == sim.StopPeers {
				s["capped"] = 1
			}
			return s, nil
		},
	}
	job := engine.Job{
		Name:     "p2psim/" + p.String(),
		Backend:  backend,
		Replicas: *replicas,
		Seed:     *seed,
		Workers:  *parallel,
	}
	if *verbose {
		hb := cli.NewHeartbeat(os.Stderr, "p2psim", "replicas")
		job.Progress = hb.Observe
		defer hb.Finish()
	}
	var (
		sinkFile  *os.File
		storeSink *engine.StoreSink
		sinks     []engine.Sink
	)
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		sinkFile = f
		sinks = append(sinks, engine.NewJSONLSink(f))
	}
	if *storeF != "" {
		ss, err := engine.CreateStoreSink(*storeF)
		if err != nil {
			return err
		}
		storeSink = ss
		sinks = append(sinks, ss)
	}
	switch len(sinks) {
	case 0:
	case 1:
		job.Sink = sinks[0]
	default:
		job.Sink = engine.Tee(sinks...)
	}
	res, err := engine.Run(nil, job)
	// Close explicitly: a flush failure (full disk) must fail the run,
	// not silently truncate the record file the CI diffs depend on.
	if sinkFile != nil {
		if cerr := sinkFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if storeSink != nil {
		if cerr := storeSink.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	if *csvOut {
		if err := writeCSV(out, res.Records[0]); err != nil {
			return err
		}
		return tel.Finish()
	}
	fmt.Fprintf(out, "parameters : %s\n", p)
	fmt.Fprintf(out, "theorem 1  : %s\n", sys.Verdict())
	fmt.Fprintf(out, "policy     : %s\n", policy.Name())
	if *replicas > 1 {
		fmt.Fprintf(out, "replicas   : %d\n", *replicas)
	}
	fmt.Fprintln(out)
	if *traj {
		writeTraceTable(out, res.Records[0], *replicas > 1)
	}
	writeSummary(out, sys, res, *replicas)
	if *quantiles {
		writeQuantiles(out, res)
	}
	return tel.Finish()
}

// traceColumns zips a record's trajectory series into rows, relying on the
// shared ladder TraceSeries guarantees.
func traceColumns(rec engine.Record) (pts [][5]float64) {
	n := rec.Series["n"]
	seeds := rec.Series["seeds"]
	club := rec.Series["one_club"]
	missing := rec.Series["missing"]
	for i := range n {
		pts = append(pts, [5]float64{n[i].T, n[i].V, seeds[i].V, club[i].V, missing[i].V})
	}
	return pts
}

func writeCSV(out io.Writer, rec engine.Record) error {
	w := csv.NewWriter(out)
	if err := w.Write([]string{"t", "n", "seeds", "one_club", "missing"}); err != nil {
		return err
	}
	for _, pt := range traceColumns(rec) {
		row := []string{strconv.FormatFloat(pt[0], 'f', 4, 64)}
		for _, v := range pt[1:] {
			row = append(row, strconv.Itoa(int(v)))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeTraceTable(out io.Writer, rec engine.Record, labeled bool) {
	if labeled {
		fmt.Fprintln(out, "replica 0 trace (decimated):")
	}
	fmt.Fprintf(out, "%10s %8s %8s %10s %10s\n", "t", "N", "seeds", "one-club", "missing")
	for _, pt := range traceColumns(rec) {
		fmt.Fprintf(out, "%10.2f %8d %8d %10d %10d\n",
			pt[0], int(pt[1]), int(pt[2]), int(pt[3]), int(pt[4]))
	}
	fmt.Fprintln(out)
}

func writeSummary(out io.Writer, sys *core.System, res *engine.Result, replicas int) {
	if replicas == 1 {
		s := res.Sample(0)
		fmt.Fprintf(out, "final time      : %.2f\n", s["final_t"])
		fmt.Fprintf(out, "final population: %d\n", int(s["final_n"]))
		fmt.Fprintf(out, "mean population : %.3f\n", s["mean_n"])
		fmt.Fprintf(out, "mean sojourn (Little): %.3f\n", sys.MeanSojournTime(s["mean_n"]))
		fmt.Fprintf(out, "events: %d  arrivals: %d  departures: %d  uploads: %d  no-ops: %d\n",
			int(s["events"]), int(s["arrivals"]), int(s["departures"]),
			int(s["uploads"]), int(s["noops"]))
		return
	}
	fmt.Fprintf(out, "final population: %s\n", res.Summary("final_n"))
	fmt.Fprintf(out, "mean population : %s\n", res.Summary("mean_n"))
	fmt.Fprintf(out, "mean sojourn (Little): %.3f\n", sys.MeanSojournTime(res.Mean("mean_n")))
	fmt.Fprintf(out, "capped replicas : %d/%d\n", res.Count("capped"), replicas)
	fmt.Fprintf(out, "events per replica: %s\n", res.Summary("events"))
}

func writeQuantiles(out io.Writer, res *engine.Result) {
	fmt.Fprintf(out, "population quantiles (P², event-sampled, mean over replicas):")
	for _, p := range quantileTargets {
		key := fmt.Sprintf("n.p%g", 100*p)
		fmt.Fprintf(out, "  p%g=%.3g", 100*p, res.Mean(key))
	}
	fmt.Fprintln(out)
}
