package main

import (
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-k", "2", "-horizon", "20", "-samples", "4", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"theorem 1", "final population", "mean population", "uploads"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, pol := range []string{"random-useful", "rarest-first", "most-common-first", "sequential-lowest"} {
		var b strings.Builder
		if err := run([]string{"-horizon", "10", "-policy", pol}, &b); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
		if !strings.Contains(b.String(), pol) {
			t.Errorf("policy %s not echoed", pol)
		}
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	var b1, b2 strings.Builder
	args := []string{"-horizon", "15", "-seed", "9"}
	if err := run(args, &b1); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunArrivalFlags(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-k", "3", "-gamma", "inf", "-us", "0.5", "-horizon", "10",
		"-arrive", "1=0.4", "-arrive", "2=0.4", "-arrive", "3=0.4",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-policy", "bogus"}, &b); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-gamma", "x"}, &b); err == nil {
		t.Error("bad gamma accepted")
	}
	if err := run([]string{"-mu", "0"}, &b); err == nil {
		t.Error("zero mu accepted")
	}
}

// TestRunReplicatedDeterministicAcrossWorkers pins the CLI's byte-identity
// contract: same flags, different -parallel, identical output.
func TestRunReplicatedDeterministicAcrossWorkers(t *testing.T) {
	var ref string
	for _, workers := range []string{"1", "8"} {
		var b strings.Builder
		err := run([]string{
			"-k", "2", "-lambda0", "3", "-horizon", "30", "-samples", "6",
			"-replicas", "4", "-parallel", workers, "-quantiles", "-seed", "5",
		}, &b)
		if err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = b.String()
			continue
		}
		if b.String() != ref {
			t.Errorf("output differs across -parallel values:\n%s\nvs\n%s", b.String(), ref)
		}
	}
	for _, want := range []string{"replicas   : 4", "population quantiles", "replica 0 trace"} {
		if !strings.Contains(ref, want) {
			t.Errorf("replicated output missing %q:\n%s", want, ref)
		}
	}
}

func TestRunTraceOff(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-horizon", "10", "-traj=false"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "one-club") {
		t.Error("-traj=false still printed the trajectory table")
	}
	if !strings.Contains(b.String(), "final population") {
		t.Error("summary missing with -traj=false")
	}
}

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-horizon", "10", "-samples", "5", "-csv"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "t,n,seeds,one_club,missing" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 5 {
		t.Errorf("csv too short: %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 4 {
			t.Errorf("malformed csv row %q", l)
		}
	}
}
