// Command tracetool inspects the Chrome trace-event JSON files the -trace
// and -flight flags produce (internal/trace): "summarize" prints the
// per-stage span breakdown, per-track utilization, straggler top-K, and
// instant-event counts of one trace; "diff" compares the span totals of
// two traces stage by stage, for before/after comparisons of a change.
//
// Usage:
//
//	tracetool summarize trace.json
//	tracetool diff before.json after.json
//
// The tool consumes its own producer's format only (pinned by the schema
// test in internal/trace) but tolerates the general form: events it does
// not recognize are counted, never rejected.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: tracetool summarize FILE | tracetool diff A B")
	}
	switch args[0] {
	case "summarize":
		if len(args) != 2 {
			return fmt.Errorf("usage: tracetool summarize FILE")
		}
		doc, err := load(args[1])
		if err != nil {
			return err
		}
		return summarize(out, doc)
	case "diff":
		if len(args) != 3 {
			return fmt.Errorf("usage: tracetool diff A B")
		}
		a, err := load(args[1])
		if err != nil {
			return err
		}
		b, err := load(args[2])
		if err != nil {
			return err
		}
		return diff(out, args[1], args[2], a, b)
	default:
		return fmt.Errorf("unknown subcommand %q (have: summarize, diff)", args[0])
	}
}

// event is one Chrome trace event; ts and dur are microseconds.
type event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		V    int64  `json:"v"`
		Name string `json:"name"` // thread_name metadata payload
	} `json:"args"`
}

type traceDoc struct {
	OtherData map[string]string `json:"otherData"`
	Events    []event           `json:"traceEvents"`
}

func load(path string) (*traceDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// spanAgg accumulates one span name's statistics (microseconds).
type spanAgg struct {
	count               int
	total, minDur, maxD float64
}

func (a *spanAgg) add(dur float64) {
	if a.count == 0 || dur < a.minDur {
		a.minDur = dur
	}
	if dur > a.maxD {
		a.maxD = dur
	}
	a.count++
	a.total += dur
}

// aggregate folds a trace into per-name span stats and per-name instant
// counts.
func aggregate(doc *traceDoc) (spans map[string]*spanAgg, instants map[string]int) {
	spans = make(map[string]*spanAgg)
	instants = make(map[string]int)
	for _, e := range doc.Events {
		switch e.Ph {
		case "X":
			agg := spans[e.Name]
			if agg == nil {
				agg = &spanAgg{}
				spans[e.Name] = agg
			}
			agg.add(e.Dur)
		case "i":
			instants[e.Name]++
		}
	}
	return spans, instants
}

// ms renders a microsecond quantity in milliseconds.
func ms(us float64) string { return fmt.Sprintf("%.3fms", us/1e3) }

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func summarize(out io.Writer, doc *traceDoc) error {
	for _, k := range sortedNames(doc.OtherData) {
		fmt.Fprintf(out, "%-12s %s\n", k+":", doc.OtherData[k])
	}

	spans, instants := aggregate(doc)

	// Per-stage breakdown, heaviest total first.
	names := sortedNames(spans)
	sort.SliceStable(names, func(i, j int) bool { return spans[names[i]].total > spans[names[j]].total })
	fmt.Fprintf(out, "\nspans (%d names):\n", len(names))
	fmt.Fprintf(out, "  %-36s %8s %12s %12s %12s %12s\n", "name", "count", "total", "mean", "min", "max")
	for _, n := range names {
		a := spans[n]
		fmt.Fprintf(out, "  %-36s %8d %12s %12s %12s %12s\n",
			n, a.count, ms(a.total), ms(a.total/float64(a.count)), ms(a.minDur), ms(a.maxD))
	}

	// Per-track utilization: busy = union of the track's span intervals
	// (nested spans — a replica inside its worker's lifecycle span — count
	// once), extent = first event start to last span end.
	type span struct{ s, e float64 }
	type trackAgg struct {
		events     int
		spans      []span
		start, end float64
	}
	trackName := map[int]string{}
	tracks := map[int]*trackAgg{}
	for _, e := range doc.Events {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				trackName[e.Tid] = e.Args.Name
			}
			continue
		}
		tr := tracks[e.Tid]
		if tr == nil {
			tr = &trackAgg{start: math.Inf(1)}
			tracks[e.Tid] = tr
		}
		tr.events++
		tr.start = math.Min(tr.start, e.TS)
		tr.end = math.Max(tr.end, e.TS+e.Dur)
		if e.Ph == "X" {
			tr.spans = append(tr.spans, span{e.TS, e.TS + e.Dur})
		}
	}
	busyUnion := func(spans []span) float64 {
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
		var busy, hi float64
		hi = math.Inf(-1)
		for _, sp := range spans {
			if sp.s > hi {
				busy += sp.e - sp.s
				hi = sp.e
			} else if sp.e > hi {
				busy += sp.e - hi
				hi = sp.e
			}
		}
		return busy
	}
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	fmt.Fprintf(out, "\ntracks (%d):\n", len(tids))
	fmt.Fprintf(out, "  %-20s %8s %12s %12s %6s\n", "track", "events", "busy", "extent", "util")
	for _, tid := range tids {
		tr := tracks[tid]
		name := trackName[tid]
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		busy := busyUnion(tr.spans)
		extent := tr.end - tr.start
		util := 0.0
		if extent > 0 {
			util = 100 * busy / extent
		}
		fmt.Fprintf(out, "  %-20s %8d %12s %12s %5.1f%%\n", name, tr.events, ms(busy), ms(extent), util)
	}

	// Straggler top-K: the longest replica busy spans, with their replica
	// index (the span argument) and track.
	const topK = 5
	var replicas []event
	for _, e := range doc.Events {
		if e.Ph == "X" && e.Name == "replica" {
			replicas = append(replicas, e)
		}
	}
	sort.SliceStable(replicas, func(i, j int) bool { return replicas[i].Dur > replicas[j].Dur })
	if len(replicas) > 0 {
		fmt.Fprintf(out, "\nstragglers (top %d of %d replica spans):\n", min(topK, len(replicas)), len(replicas))
		for i, e := range replicas {
			if i >= topK {
				break
			}
			name := trackName[e.Tid]
			if name == "" {
				name = fmt.Sprintf("tid%d", e.Tid)
			}
			fmt.Fprintf(out, "  %12s  replica %-6d %s\n", ms(e.Dur), e.Args.V, name)
		}
	}

	if len(instants) > 0 {
		fmt.Fprintf(out, "\ninstants:\n")
		for _, n := range sortedNames(instants) {
			fmt.Fprintf(out, "  %-36s %8d\n", n, instants[n])
		}
	}
	return nil
}

func diff(out io.Writer, pathA, pathB string, a, b *traceDoc) error {
	spansA, instA := aggregate(a)
	spansB, instB := aggregate(b)
	fmt.Fprintf(out, "A: %s\nB: %s\n", pathA, pathB)

	names := map[string]bool{}
	for n := range spansA {
		names[n] = true
	}
	for n := range spansB {
		names[n] = true
	}
	fmt.Fprintf(out, "\nspans:\n")
	fmt.Fprintf(out, "  %-36s %8s %8s %12s %12s %8s\n", "name", "countA", "countB", "totalA", "totalB", "delta")
	for _, n := range sortedNames(names) {
		var ca, cb int
		var ta, tb float64
		if s := spansA[n]; s != nil {
			ca, ta = s.count, s.total
		}
		if s := spansB[n]; s != nil {
			cb, tb = s.count, s.total
		}
		delta := "n/a"
		if ta > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(tb-ta)/ta)
		}
		fmt.Fprintf(out, "  %-36s %8d %8d %12s %12s %8s\n", n, ca, cb, ms(ta), ms(tb), delta)
	}

	all := map[string]bool{}
	for n := range instA {
		all[n] = true
	}
	for n := range instB {
		all[n] = true
	}
	if len(all) > 0 {
		fmt.Fprintf(out, "\ninstants:\n")
		fmt.Fprintf(out, "  %-36s %8s %8s\n", "name", "countA", "countB")
		for _, n := range sortedNames(all) {
			fmt.Fprintf(out, "  %-36s %8d %8d\n", n, instA[n], instB[n])
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
