package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeSampleTrace produces a real trace through the producer package, so
// the test round-trips the actual schema rather than a hand-written fixture.
func writeSampleTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Stream: f, Meta: map[string]string{"label": "unit"}})
	w0 := tr.Track("worker/0")
	for i := 0; i < 4; i++ {
		t0 := w0.Now()
		w0.Span("replica", "engine", t0, int64(i))
	}
	w0.Instant("cache.hit", "sweep", 9)
	eng := tr.Track("engine")
	j0 := eng.Now()
	eng.Span("job:unit", "engine", j0, 4)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSummarizeRoundTrip: summarize consumes a trace the producer wrote and
// reports every stage, track, straggler, and instant in it.
func TestSummarizeRoundTrip(t *testing.T) {
	path := writeSampleTrace(t)
	var b strings.Builder
	if err := run([]string{"summarize", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"label:       unit",
		"replica", "job:unit", // span names
		"worker/0", "engine", // track names
		"stragglers (top 4 of 4 replica spans)",
		"cache.hit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestDiffSelf: diffing a trace against itself reports zero deltas and
// equal counts.
func TestDiffSelf(t *testing.T) {
	path := writeSampleTrace(t)
	var b strings.Builder
	if err := run([]string{"diff", path, path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("self-diff must report +0.0%% deltas:\n%s", out)
	}
	if !strings.Contains(out, "cache.hit") {
		t.Errorf("self-diff missing instants table:\n%s", out)
	}
}

// TestUsageErrors: bad invocations fail with a usage error instead of
// panicking or succeeding silently.
func TestUsageErrors(t *testing.T) {
	var b strings.Builder
	for _, args := range [][]string{
		{}, {"summarize"}, {"diff", "one.json"}, {"bogus", "x"},
		{"summarize", filepath.Join(t.TempDir(), "missing.json")},
	} {
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
