// Command phasemap draws 2-D phase diagrams of the Zhu–Hajek model through
// the adaptive sweep subsystem (internal/sweep): pick two axes, a range,
// and a refinement depth, and the sweep evaluates the base grid, then
// bisects only the cells straddling the stability boundary — typically
// >5× fewer evaluations than a dense grid at the same resolution. Cells
// are memoized by a canonical parameter hash; with -cache FILE the memo
// table spills to JSONL and an interrupted sweep resumes where it left
// off. Output is byte-identical for any -parallel value at a fixed seed.
//
// Examples:
//
//	phasemap                                  # Fig. 1(a): λ0 × µ/γ, Theorem 1
//	phasemap -eval sim -depth 2               # same plane, Monte-Carlo verdicts
//	phasemap -x flash-peak -xrange 1,9 -y churn -yrange 0,1.6 \
//	    -eval sim -lambda0 3                  # scenario diagram (needs -eval sim)
//	phasemap -format csv -o map.csv           # machine-readable raster
//	phasemap -cache cells.jsonl -v            # spill cells, live progress
//	phasemap -store cells.store -v            # columnar spill; resumes even a torn file
//	phasemap -eval sim -metrics-addr :9090 -report run.json  # live /metrics
//	         # (cache hit rate, events/sec) + end-of-run telemetry report
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "phasemap:", err)
		os.Exit(1)
	}
}

// parseRange parses "MIN,MAX".
func parseRange(s string) (lo, hi float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q (want MIN,MAX)", s)
	}
	if lo, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	if hi, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	return lo, hi, nil
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("phasemap", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		xName  = fs.String("x", "lambda0", "x axis (one of: "+strings.Join(sweep.AxisNames(), ", ")+")")
		yName  = fs.String("y", "mu-over-gamma", "y axis")
		xRange = fs.String("xrange", "0.25,6", "x axis range MIN,MAX")
		yRange = fs.String("yrange", "0,0.9", "y axis range MIN,MAX")
		xCells = fs.Int("xcells", 8, "base grid cells along x")
		yCells = fs.Int("ycells", 6, "base grid cells along y")
		depth  = fs.Int("depth", 3, "quadtree refinement depth (0 = dense base grid only)")
		dense  = fs.Bool("dense", false, "evaluate every fine cell (baseline; no adaptive savings)")
		eval   = fs.String("eval", "theory", `cell evaluator: "theory" (Theorem 1), "sim" (Monte-Carlo), or "hybrid" (adaptive multi-regime Monte-Carlo)`)

		k       = fs.Int("k", 1, "number of pieces K")
		us      = fs.Float64("us", 1, "seed upload rate U_s")
		mu      = fs.Float64("mu", 1, "peer contact rate µ")
		gammaS  = fs.String("gamma", "2", `peer-seed departure rate γ (number or "inf")`)
		lambda0 = fs.Float64("lambda0", 1, "empty-type arrival rate λ0 (ignored if -arrive given)")
		arrive  = &cli.ArrivalFlags{}

		horizon  = fs.Float64("horizon", 300, "sim evaluator: simulated time per replica")
		peerCap  = fs.Int("peer-cap", 400, "sim evaluator: growth cap per replica")
		replicas = fs.Int("replicas", 3, "sim evaluator: sample paths per cell")

		flashPeak = fs.Float64("flash-peak", 0, "base scenario: flash-crowd peak multiplier (0 = none)")
		churn     = fs.Float64("churn", 0, "base scenario: per-downloader abandonment rate δ")

		seed     = fs.Uint64("seed", 1, "base RNG seed (sim evaluator)")
		parallel = fs.Int("parallel", engine.DefaultWorkers(), "engine worker pool size (1 = serial)")
		format   = fs.String("format", "ascii", `output format: "ascii", "csv", or "jsonl"`)
		outFile  = fs.String("o", "", "write the map to this file instead of stdout")
		cacheF   = fs.String("cache", "", "JSONL cell cache: resume from it and spill new cells to it")
		storeF   = fs.String("store", "", "columnar cell cache (.store): resume from it — even a torn one — and spill new cells to it")
		verbose  = fs.Bool("v", false, "report per-round refined-cell progress on stderr (throttled heartbeat)")
		tel      cli.Telemetry
	)
	fs.Var(arrive, "arrive", "arrival spec PIECES=RATE (repeatable), e.g. -arrive 1,2=0.5")
	tel.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	if err := tel.Start("phasemap", errw); err != nil {
		return err
	}
	defer tel.Close()

	gamma, err := cli.ParseGamma(*gammaS)
	if err != nil {
		return err
	}
	base, err := cli.BuildParams(*k, *us, *mu, gamma, *lambda0, arrive)
	if err != nil {
		return err
	}
	var scenario kernel.Scenario
	if *flashPeak > 0 {
		shape := sweep.DefaultFlashShape
		shape.Peak = *flashPeak
		scenario.Arrival = shape
	}
	scenario.Churn = *churn

	xAxis, err := sweep.AxisByName(*xName)
	if err != nil {
		return err
	}
	yAxis, err := sweep.AxisByName(*yName)
	if err != nil {
		return err
	}
	xMin, xMax, err := parseRange(*xRange)
	if err != nil {
		return err
	}
	yMin, yMax, err := parseRange(*yRange)
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Base:     base,
		Scenario: scenario,
		X:        sweep.AxisSpec{Axis: xAxis, Min: xMin, Max: xMax, Cells: *xCells},
		Y:        sweep.AxisSpec{Axis: yAxis, Min: yMin, Max: yMax, Cells: *yCells},

		RefineDepth: *depth,
	}

	switch *format {
	case "ascii", "csv", "jsonl":
	default:
		return fmt.Errorf("unknown -format %q (want ascii, csv, or jsonl)", *format)
	}

	var evaluator sweep.Evaluator
	switch *eval {
	case "theory":
		// Theorem 1 sees only the model parameters, so a workload overlay
		// would be silently ignored and the map misleadingly uniform.
		if scenario.Active() || xAxis.Scenario || yAxis.Scenario {
			return fmt.Errorf("scenario axes and -flash-peak/-churn flags require -eval sim (Theorem 1 ignores workload overlays)")
		}
		evaluator = sweep.Theory{}
	case "sim":
		// Fold the seed into the evaluator identity so cached cells from a
		// different -seed are never reused.
		evaluator = sweep.Seeded{
			Evaluator: &sweep.Empirical{Horizon: *horizon, PeerCap: *peerCap, Replicas: *replicas},
			Seed:      *seed,
		}
	case "hybrid":
		// Tau-leaping aggregates the stationary rates of equation (1), so
		// workload overlays need the exact simulator.
		if scenario.Active() || xAxis.Scenario || yAxis.Scenario {
			return fmt.Errorf("scenario axes and -flash-peak/-churn flags require -eval sim (the hybrid backend aggregates stationary rates)")
		}
		evaluator = sweep.Seeded{
			Evaluator: &sweep.Hybrid{Horizon: *horizon, PeerCap: *peerCap, Replicas: *replicas},
			Seed:      *seed,
		}
	default:
		return fmt.Errorf("unknown -eval %q (want theory, sim, or hybrid)", *eval)
	}

	if *cacheF != "" && *storeF != "" {
		return fmt.Errorf("-cache and -store are mutually exclusive (one spill target per run)")
	}
	runner := &sweep.Runner{Evaluator: evaluator, Workers: *parallel}
	var journal *os.File
	if *cacheF != "" {
		cache, f, loaded, err := openCache(*cacheF)
		if err != nil {
			return err
		}
		journal = f
		defer journal.Close() // error-path cleanup; the success path checks Close below
		runner.Cache = cache
		if *verbose && loaded > 0 {
			fmt.Fprintf(errw, "phasemap: resumed %d cells from %s\n", loaded, *cacheF)
		}
	}
	var cellStore *sweep.CellStore
	if *storeF != "" {
		cache := sweep.NewCache()
		cs, loaded, err := sweep.OpenCellStore(*storeF, cache)
		if err != nil {
			return err
		}
		cellStore = cs
		defer cellStore.Close() // error-path cleanup; the success path checks Close below
		runner.Cache = cache
		if *verbose && loaded > 0 {
			fmt.Fprintf(errw, "phasemap: resumed %d cells from %s\n", loaded, *storeF)
		}
	}
	if *verbose {
		hb := cli.NewHeartbeat(errw, "phasemap", "cells")
		runner.Progress = hb.Step
		defer hb.Finish()
	}

	var m *sweep.Map
	if *dense {
		m, err = grid.RunDense(ctx, runner)
	} else {
		m, err = grid.Run(ctx, runner)
	}
	if err != nil {
		return err
	}

	w := out
	var outF *os.File
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		outF = f
		defer outF.Close() // error-path cleanup; the success path checks Close below
		w = f
	}
	switch *format {
	case "ascii":
		err = sweep.WriteASCII(w, m)
	case "csv":
		err = sweep.WriteCSV(w, m)
	case "jsonl":
		err = sweep.WriteJSONL(w, m)
	}
	if err != nil {
		return err
	}
	// A write error surfacing only at close (full disk, network FS) must
	// not exit 0 with a truncated map or a lost journal tail.
	if outF != nil {
		if err := outF.Close(); err != nil {
			return err
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return err
		}
	}
	if cellStore != nil {
		if err := cellStore.Close(); err != nil {
			return err
		}
	}
	return tel.Finish()
}

// openCache opens (or creates) the spill file, replays any entries already
// in it, and attaches it for appending.
func openCache(path string) (*sweep.Cache, *os.File, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	cache := sweep.NewCache()
	loaded, err := cache.LoadJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	cache.AttachJournal(f)
	return cache, f, loaded, nil
}
