package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func render(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), args, &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestASCIIMap(t *testing.T) {
	out := render(t, "-xcells", "4", "-ycells", "3", "-depth", "1")
	for _, want := range []string{"p = positive-recurrent", "t = transient", "evaluated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormats(t *testing.T) {
	csv := render(t, "-xcells", "3", "-ycells", "2", "-depth", "0", "-format", "csv")
	if !strings.HasPrefix(csv, "lambda0,mu-over-gamma,class,value\n") {
		t.Errorf("csv header: %q", csv[:40])
	}
	if lines := strings.Count(csv, "\n"); lines != 3*2+1 {
		t.Errorf("csv lines = %d, want 7", lines)
	}
	jsonl := render(t, "-xcells", "3", "-ycells", "2", "-depth", "0", "-format", "jsonl")
	if !strings.Contains(jsonl, `"kind":"map"`) {
		t.Errorf("jsonl missing map record:\n%s", jsonl)
	}
}

// TestParallelByteIdentical is the CLI half of the acceptance criterion:
// the rendered map is byte-identical across -parallel 1/2/8 at a fixed
// seed, including the Monte-Carlo evaluator.
func TestParallelByteIdentical(t *testing.T) {
	common := []string{
		"-eval", "sim", "-horizon", "30", "-peer-cap", "100", "-replicas", "2",
		"-xcells", "3", "-ycells", "2", "-depth", "1", "-seed", "5",
		"-xrange", "0.5,6.5", "-yrange", "0,0.8", "-format", "csv",
	}
	var outs []string
	for _, p := range []string{"1", "2", "8"} {
		outs = append(outs, render(t, append(common, "-parallel", p)...))
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("output differs across -parallel:\n%s\nvs\n%s\nvs\n%s", outs[0], outs[1], outs[2])
	}
}

func TestCacheResume(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cells.jsonl")
	args := []string{"-xcells", "4", "-ycells", "3", "-depth", "2", "-cache", cacheFile, "-format", "ascii"}
	first := render(t, args...)
	second := render(t, args...)
	// The resumed run answers everything from the spill: same raster, zero
	// evaluations.
	if !strings.Contains(second, "evaluated 0 of") {
		t.Errorf("resumed run re-evaluated cells:\n%s", second)
	}
	cut := func(s string) string { return s[:strings.Index(s, "evaluated")] }
	if cut(first) != cut(second) {
		t.Errorf("resumed raster differs:\n%s\nvs\n%s", first, second)
	}
}

func TestUnknownAxis(t *testing.T) {
	err := run(context.Background(), []string{"-x", "bogus"}, io.Discard, io.Discard)
	if !errors.Is(err, sweep.ErrUnknownAxis) {
		t.Errorf("err = %v, want ErrUnknownAxis", err)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-parallel", "0"},
		{"-eval", "psychic"},
		{"-format", "png"},
		{"-xrange", "1"},
		{"-xcells", "0"},
		// Scenario axes/flags are invisible to the theory evaluator and
		// must be rejected rather than render a misleading uniform map.
		{"-x", "flash-peak", "-xrange", "1,9"},
		{"-churn", "0.5"},
	} {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
