// Command experiments regenerates the paper-reproduction tables E1–E18
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// output). Replicated experiments run on the parallel Monte-Carlo engine;
// output is byte-identical for any -parallel value at a fixed seed.
//
// Examples:
//
//	experiments                  # run everything at full scale
//	experiments -quick           # reduced scale (seconds instead of minutes)
//	experiments -id E1,E7        # selected experiments only
//	experiments -parallel 1      # serial replicas (same tables, slower)
//	experiments -jsonl out.jsonl # structured per-replica records
//	experiments -store out.store # same records, columnar (cmd/results queries)
//	experiments -id E15 -flash-peak 10 -churn 1  # scenario-layer knobs
//	experiments -v -metrics-addr :9090 -report run.json  # heartbeat, live
//	           # /metrics + pprof, end-of-run telemetry report
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/exp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "reduced horizons and replica counts")
		ids      = fs.String("id", "", "comma-separated experiment ids (default: all)")
		seed     = fs.Uint64("seed", 1, "base RNG seed")
		parallel  = fs.Int("parallel", engine.DefaultWorkers(), "engine worker pool size (1 = serial)")
		jsonl     = fs.String("jsonl", "", "write per-replica engine records to this JSONL file")
		storeF    = fs.String("store", "", "write per-replica engine records to this columnar result store (query with cmd/results)")
		flashPeak = fs.Float64("flash-peak", 0, "E15: flash-crowd peak arrival multiplier (0 = default)")
		churn     = fs.Float64("churn", 0, "E15: per-downloader abandonment rate δ (0 = default)")
		verbose   = fs.Bool("v", false, "print a throttled replica-progress heartbeat to stderr")
		tel       cli.Telemetry
	)
	tel.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1, got %d", *parallel)
	}
	if *flashPeak < 0 || *churn < 0 {
		return fmt.Errorf("-flash-peak and -churn must be >= 0, got %v and %v", *flashPeak, *churn)
	}
	if err := tel.Start("experiments", os.Stderr); err != nil {
		return err
	}
	defer tel.Close()
	cfg := exp.Config{
		Quick: *quick, Seed: *seed, Workers: *parallel, Context: ctx,
		FlashPeak: *flashPeak, Churn: *churn,
	}
	if *verbose {
		hb := cli.NewHeartbeat(os.Stderr, "experiments", "replicas")
		cfg.Progress = hb.Observe
		defer hb.Finish()
	}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	// Open the sinks only after the id list validates, so a typo'd -id does
	// not truncate an existing results file.
	var sinks []engine.Sink
	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, engine.NewJSONLSink(f))
	}
	var storeSink *engine.StoreSink
	if *storeF != "" {
		ss, err := engine.CreateStoreSink(*storeF)
		if err != nil {
			return err
		}
		storeSink = ss
		defer storeSink.Close() // error-path cleanup; the success path checks Close below
		sinks = append(sinks, ss)
	}
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Sink = sinks[0]
	default:
		cfg.Sink = engine.Tee(sinks...)
	}
	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "reproduces: %s\n", e.Artifact)
		fmt.Fprint(out, table.Render())
		fmt.Fprintf(out, "elapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	// A store flush failure (full disk) must fail the run, not silently
	// truncate the file the CI diffs depend on.
	if storeSink != nil {
		if err := storeSink.Close(); err != nil {
			return err
		}
	}
	return tel.Finish()
}
