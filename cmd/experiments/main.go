// Command experiments regenerates the paper-reproduction tables E1–E12
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// output).
//
// Examples:
//
//	experiments              # run everything at full scale
//	experiments -quick       # reduced scale (seconds instead of minutes)
//	experiments -id E1,E7    # selected experiments only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick = fs.Bool("quick", false, "reduced horizons and replica counts")
		ids   = fs.String("id", "", "comma-separated experiment ids (default: all)")
		seed  = fs.Uint64("seed", 1, "base RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed}

	var selected []exp.Experiment
	if *ids == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "reproduces: %s\n", e.Artifact)
		fmt.Fprint(out, table.Render())
		fmt.Fprintf(out, "elapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
