package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedQuick(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-quick", "-id", "E12,E5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E12 —", "E5 —", "reproduces:", "elapsed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "DISAGREE") {
		t.Errorf("experiment disagreed with theory:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-id", "E99"}, &b); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunBadParallel(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-parallel", "0"}, &b); err == nil {
		t.Error("-parallel 0 accepted")
	}
}

// TestRunScenarioFlags runs the scenario experiment end-to-end through the
// CLI with explicit flash-crowd and churn knobs.
func TestRunScenarioFlags(t *testing.T) {
	var b strings.Builder
	args := []string{"-quick", "-id", "E15", "-flash-peak", "7", "-churn", "0.8"}
	if err := run(context.Background(), args, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E15 —", "×7", "δ=0.8", "flash crowd", "churn"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DISAGREE") {
		t.Errorf("scenario experiment disagreed:\n%s", out)
	}
}

func TestRunBadScenarioFlags(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-churn", "-1"}, &b); err == nil {
		t.Error("negative -churn accepted")
	}
}

// TestParallelDeterminism is the acceptance check for the engine: the
// rendered tables must be byte-identical for -parallel 1 and -parallel 8
// at the same seed.
func TestParallelDeterminism(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "8"} {
		var b strings.Builder
		args := []string{"-quick", "-seed", "1", "-parallel", workers, "-id", "E1,E5,E8,E9,E13"}
		if err := run(context.Background(), args, &b); err != nil {
			t.Fatalf("-parallel %s: %v", workers, err)
		}
		outputs = append(outputs, stripElapsed(b.String()))
	}
	if outputs[0] != outputs[1] {
		t.Errorf("tables differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestJSONLSinkDeterminism checks the structured records are also
// byte-identical across worker counts.
func TestJSONLSinkDeterminism(t *testing.T) {
	dir := t.TempDir()
	files := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "out"+workers+".jsonl")
		var b strings.Builder
		args := []string{"-quick", "-seed", "3", "-parallel", workers, "-jsonl", path, "-id", "E9"}
		if err := run(context.Background(), args, &b); err != nil {
			t.Fatalf("-parallel %s: %v", workers, err)
		}
		files = append(files, path)
	}
	a, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	bts, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty JSONL output")
	}
	if string(a) != string(bts) {
		t.Errorf("JSONL differs between worker counts:\n%s\nvs\n%s", a, bts)
	}
}

// stripElapsed removes the wall-clock lines, the only legitimate
// run-to-run difference.
func stripElapsed(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "elapsed:") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}
