package main

import (
	"strings"
	"testing"
)

func TestRunSelectedQuick(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-id", "E12,E5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E12 —", "E5 —", "reproduces:", "elapsed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "DISAGREE") {
		t.Errorf("experiment disagreed with theory:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-id", "E99"}, &b); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}
