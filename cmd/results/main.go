// Command results inspects and queries columnar result stores
// (internal/store) — the .store files the -store flags of p2psim,
// experiments, and phasemap produce: "ls" prints each file's manifest
// (app, version, rows, blocks, clean or torn), "cat" pages rows through
// the O(1) row index, "filter" scans with column predicates, "agg"
// folds a numeric column into Welford summaries per group, and "export"
// streams a store back out as JSONL — byte-identical to the JSONL the
// same run would have written directly, for engine record and sweep
// cell stores — or as CSV.
//
// Usage:
//
//	results ls FILE...
//	results cat [-offset N] [-limit N] [-recover] FILE
//	results filter [-where 'COL OP VALUE']... [-limit N] [-recover] FILE
//	results agg -col COL [-by COL] [-recover] FILE
//	results export [-format jsonl|csv] [-o FILE] [-recover] FILE
//
// Predicates compare numerically (=, !=, <, <=, >, >=) on float64/int64
// columns and literally (=, !=) on string columns; repeated -where
// flags AND together. -recover salvages every committed block of a torn
// file (a crashed run) instead of failing; "ls" always recovers.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "results:", err)
		os.Exit(1)
	}
}

const usage = "usage: results ls|cat|filter|agg|export [flags] FILE (run a subcommand with -h for its flags)"

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("%s", usage)
	}
	switch args[0] {
	case "ls":
		return runLs(args[1:], out)
	case "cat":
		return runCat(args[1:], out)
	case "filter":
		return runFilter(args[1:], out)
	case "agg":
		return runAgg(args[1:], out)
	case "export":
		return runExport(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", args[0], usage)
	}
}

// openStore opens one store file, salvaging torn files when recover is
// set.
func openStore(path string, recover bool) (*store.Reader, error) {
	if recover {
		return store.Recover(path)
	}
	r, err := store.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w (a torn file from a crashed run opens with -recover)", err)
	}
	return r, nil
}

// runLs prints a manifest summary per file. Torn files are salvaged and
// flagged, never fatal — ls is the triage tool.
func runLs(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("results ls", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: results ls FILE...")
	}
	for _, path := range fs.Args() {
		r, err := store.Recover(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		cols := make([]string, len(r.Schema().Cols))
		for i, c := range r.Schema().Cols {
			cols[i] = fmt.Sprintf("%s:%s", c.Name, c.Type)
		}
		major, minor := r.Version()
		state := "clean"
		if !r.Clean() {
			state = fmt.Sprintf("torn (%d of %d bytes committed)", r.CommittedSize(), r.Size())
		}
		fmt.Fprintf(out, "%s\tapp=%s\tv%d.%d\trows=%d\tblocks=%d\t%s\t[%s]\n",
			path, r.Schema().App, major, minor, r.NumRows(), r.NumBlocks(), state, strings.Join(cols, ", "))
		if err := r.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runCat pages rows out of the row index — random access, so -offset on
// a million-row file touches only the blocks holding the page.
func runCat(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("results cat", flag.ContinueOnError)
	offset := fs.Int64("offset", 0, "first row to print")
	limit := fs.Int64("limit", 20, "rows to print (0 = to the end)")
	recov := fs.Bool("recover", false, "salvage a torn file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: results cat [-offset N] [-limit N] [-recover] FILE")
	}
	r, err := openStore(fs.Arg(0), *recov)
	if err != nil {
		return err
	}
	defer r.Close()
	end := r.NumRows()
	if *limit > 0 && *offset+*limit < end {
		end = *offset + *limit
	}
	writeHeader(out, r.Schema())
	var buf []store.Value
	for i := *offset; i < end; i++ {
		if buf, err = r.Row(i, buf); err != nil {
			return err
		}
		writeRow(out, buf)
	}
	return nil
}

// runFilter scans the store printing rows that satisfy every -where
// predicate.
func runFilter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("results filter", flag.ContinueOnError)
	var wheres multiFlag
	fs.Var(&wheres, "where", "predicate 'COL OP VALUE' (repeatable, ANDed); OP: = != < <= > >=")
	limit := fs.Int64("limit", 0, "stop after this many matches (0 = all)")
	recov := fs.Bool("recover", false, "salvage a torn file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: results filter [-where 'COL OP VALUE']... [-limit N] [-recover] FILE")
	}
	r, err := openStore(fs.Arg(0), *recov)
	if err != nil {
		return err
	}
	defer r.Close()
	preds, err := parsePredicates(wheres, r.Schema())
	if err != nil {
		return err
	}
	writeHeader(out, r.Schema())
	var matched int64
	errStop := fmt.Errorf("limit reached")
	err = r.Scan(func(i int64, vals []store.Value) error {
		for _, p := range preds {
			if !p.match(vals) {
				return nil
			}
		}
		writeRow(out, vals)
		matched++
		if *limit > 0 && matched >= *limit {
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return err
	}
	return nil
}

// runAgg folds a numeric column through internal/dist Welford summaries,
// one per value of the -by column ("" groups everything together).
func runAgg(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("results agg", flag.ContinueOnError)
	col := fs.String("col", "", "numeric column to aggregate (required)")
	by := fs.String("by", "", "string column to group by (optional)")
	recov := fs.Bool("recover", false, "salvage a torn file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *col == "" {
		return fmt.Errorf("usage: results agg -col COL [-by COL] [-recover] FILE")
	}
	r, err := openStore(fs.Arg(0), *recov)
	if err != nil {
		return err
	}
	defer r.Close()
	sch := r.Schema()
	ci := sch.Col(*col)
	if ci < 0 {
		return fmt.Errorf("no column %q in schema %v", *col, sch.Cols)
	}
	if sch.Cols[ci].Type == store.String {
		return fmt.Errorf("column %q is a string column; -col needs a numeric one", *col)
	}
	bi := -1
	if *by != "" {
		if bi = sch.Col(*by); bi < 0 {
			return fmt.Errorf("no column %q in schema %v", *by, sch.Cols)
		}
	}
	sums := map[string]*dist.Summary{}
	err = r.Scan(func(i int64, vals []store.Value) error {
		group := ""
		if bi >= 0 {
			group = formatValue(vals[bi])
		}
		s, ok := sums[group]
		if !ok {
			s = &dist.Summary{}
			sums[group] = s
		}
		v := vals[ci].Float64()
		if vals[ci].Type() == store.Int64 {
			v = float64(vals[ci].Int64())
		}
		s.Add(v)
		return nil
	})
	if err != nil {
		return err
	}
	groups := make([]string, 0, len(sums))
	for g := range sums {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	fmt.Fprintln(out, "group\tn\tmean\tstd\tci95\tmin\tmax")
	for _, g := range groups {
		s := sums[g]
		fmt.Fprintf(out, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", g, s.N(),
			fnum(s.Mean()), fnum(s.Std()), fnum(s.CI95()), fnum(s.Min()), fnum(s.Max()))
	}
	return nil
}

// runExport streams the store out as JSONL or CSV. JSONL is app-aware:
// engine record stores and sweep cell stores reassemble into the exact
// byte stream their JSONL sinks would have written (the CI resumability
// diffs rely on this); other apps export one flat object per row.
func runExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("results export", flag.ContinueOnError)
	format := fs.String("format", "jsonl", `output format: "jsonl" or "csv"`)
	outFile := fs.String("o", "", "write to this file instead of stdout")
	recov := fs.Bool("recover", false, "salvage a torn file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: results export [-format jsonl|csv] [-o FILE] [-recover] FILE")
	}
	r, err := openStore(fs.Arg(0), *recov)
	if err != nil {
		return err
	}
	defer r.Close()
	w := out
	var outF *os.File
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		outF = f
		defer outF.Close() // error-path cleanup; the success path checks Close below
		w = f
	}
	switch *format {
	case "jsonl":
		err = exportJSONL(w, r)
	case "csv":
		err = exportCSV(w, r)
	default:
		return fmt.Errorf("unknown -format %q (want jsonl or csv)", *format)
	}
	if err != nil {
		return err
	}
	if outF != nil {
		// A flush failure at close (full disk) must not exit 0 with a
		// truncated export.
		return outF.Close()
	}
	return nil
}

func exportJSONL(w io.Writer, r *store.Reader) error {
	switch r.Schema().App {
	case engine.RecordStoreApp:
		return engine.StoreToJSONL(w, r)
	case sweep.CellStoreApp:
		return sweep.StoreCellsToJSONL(w, r)
	}
	// Generic stores export one object per row, columns in schema order.
	var b strings.Builder
	return r.Scan(func(i int64, vals []store.Value) error {
		b.Reset()
		b.WriteByte('{')
		for ci, c := range r.Schema().Cols {
			if ci > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(c.Name))
			b.WriteByte(':')
			switch vals[ci].Type() {
			case store.String:
				b.WriteString(strconv.Quote(vals[ci].String()))
			default:
				b.WriteString(formatValue(vals[ci]))
			}
		}
		b.WriteString("}\n")
		_, err := io.WriteString(w, b.String())
		return err
	})
}

func exportCSV(w io.Writer, r *store.Reader) error {
	cw := csv.NewWriter(w)
	rec := make([]string, len(r.Schema().Cols))
	for i, c := range r.Schema().Cols {
		rec[i] = c.Name
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	err := r.Scan(func(i int64, vals []store.Value) error {
		for ci := range vals {
			rec[ci] = formatValue(vals[ci])
		}
		return cw.Write(rec)
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// predicate is one parsed -where clause.
type predicate struct {
	col int
	typ store.Type
	op  string
	f   float64 // numeric comparand
	s   string  // string comparand
}

func (p predicate) match(vals []store.Value) bool {
	if p.typ == store.String {
		eq := vals[p.col].String() == p.s
		return (p.op == "=") == eq
	}
	v := vals[p.col].Float64()
	if p.typ == store.Int64 {
		v = float64(vals[p.col].Int64())
	}
	switch p.op {
	case "=":
		return v == p.f
	case "!=":
		return v != p.f
	case "<":
		return v < p.f
	case "<=":
		return v <= p.f
	case ">":
		return v > p.f
	case ">=":
		return v >= p.f
	}
	return false
}

// parsePredicates parses 'COL OP VALUE' clauses against the schema.
// Two-character operators are matched before their one-character
// prefixes so "<=" never parses as "<" with a stray "=" in the value.
func parsePredicates(wheres []string, sch store.Schema) ([]predicate, error) {
	ops := []string{"<=", ">=", "!=", "=", "<", ">"}
	var preds []predicate
	for _, clause := range wheres {
		var op string
		at := -1
		for _, o := range ops {
			if i := strings.Index(clause, o); i > 0 && (at < 0 || i < at) {
				op, at = o, i
			}
		}
		if at < 0 {
			return nil, fmt.Errorf("bad predicate %q (want 'COL OP VALUE')", clause)
		}
		name := strings.TrimSpace(clause[:at])
		val := strings.TrimSpace(clause[at+len(op):])
		ci := sch.Col(name)
		if ci < 0 {
			return nil, fmt.Errorf("predicate %q: no column %q in schema %v", clause, name, sch.Cols)
		}
		p := predicate{col: ci, typ: sch.Cols[ci].Type, op: op}
		if p.typ == store.String {
			if op != "=" && op != "!=" {
				return nil, fmt.Errorf("predicate %q: string column %q supports only = and !=", clause, name)
			}
			p.s = val
		} else {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("predicate %q: %v", clause, err)
			}
			p.f = f
		}
		preds = append(preds, p)
	}
	return preds, nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func writeHeader(w io.Writer, sch store.Schema) {
	names := make([]string, len(sch.Cols))
	for i, c := range sch.Cols {
		names[i] = c.Name
	}
	fmt.Fprintln(w, strings.Join(names, "\t"))
}

func writeRow(w io.Writer, vals []store.Value) {
	parts := make([]string, len(vals))
	for i := range vals {
		parts[i] = formatValue(vals[i])
	}
	fmt.Fprintln(w, strings.Join(parts, "\t"))
}

// formatValue renders a cell; floats round-trip exactly ('g', -1).
func formatValue(v store.Value) string {
	switch v.Type() {
	case store.Float64:
		return strconv.FormatFloat(v.Float64(), 'g', -1, 64)
	case store.Int64:
		return strconv.FormatInt(v.Int64(), 10)
	default:
		return v.String()
	}
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
