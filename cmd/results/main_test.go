package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/store"
)

// writeRecordStore runs a small engine job into both sinks and returns
// the store path and the JSONL bytes the run wrote directly.
func writeRecordStore(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "records.store")
	ss, err := engine.CreateStoreSink(path)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	_, err = engine.Run(context.Background(), engine.Job{
		Name: "cli", Replicas: 10, Seed: 7, Workers: 2,
		Sink: engine.Tee(engine.NewJSONLSink(&jsonl), ss),
		Backend: engine.Func{Label: "cli", Fn: func(ctx context.Context, rep int, r *rng.RNG) (engine.Sample, error) {
			return engine.Sample{"x": r.Float64(), "n": float64(rep)}, nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	return path, jsonl.Bytes()
}

// writeGenericStore writes a small store with a schema no subsystem owns.
func writeGenericStore(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "generic.store")
	w, err := store.Create(path, store.Schema{
		App: "test/1",
		Cols: []store.Column{
			{Name: "group", Type: store.String},
			{Name: "i", Type: store.Int64},
			{Name: "v", Type: store.Float64},
		},
	}, store.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g := "even"
		if i%2 == 1 {
			g = "odd"
		}
		row := []store.Value{store.S(g), store.I(int64(i)), store.F(float64(i) * 1.5)}
		if err := w.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func results(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("results %v: %v", args, err)
	}
	return out.String()
}

func TestLs(t *testing.T) {
	path, _ := writeRecordStore(t, t.TempDir())
	out := results(t, "ls", path)
	for _, want := range []string{"app=" + engine.RecordStoreApp, "v1.0", "clean", "kind:str", "v:f64"} {
		if !strings.Contains(out, want) {
			t.Errorf("ls output missing %q:\n%s", want, out)
		}
	}
}

func TestCatPaging(t *testing.T) {
	path := writeGenericStore(t, t.TempDir())
	out := results(t, "cat", "-offset", "3", "-limit", "2", path)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("cat printed %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "group\ti\tv" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "odd\t3\t4.5" || lines[2] != "even\t4\t6" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestFilter(t *testing.T) {
	path := writeGenericStore(t, t.TempDir())
	out := results(t, "filter", "-where", "group=odd", "-where", "v>=6", path)
	// odd rows with v >= 6: i = 5, 7, 9.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("filter printed %d lines:\n%s", len(lines), out)
	}
	for _, row := range lines[1:] {
		if !strings.HasPrefix(row, "odd\t") {
			t.Errorf("non-odd row %q", row)
		}
	}
	if lines[1] != "odd\t5\t7.5" {
		t.Errorf("first match = %q", lines[1])
	}
	out = results(t, "filter", "-where", "i!=0", "-limit", "2", path)
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("-limit 2 printed %d lines", n)
	}
}

func TestFilterBadPredicate(t *testing.T) {
	path := writeGenericStore(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"filter", "-where", "nope=1", path}, &out); err == nil {
		t.Error("unknown column accepted")
	}
	if err := run([]string{"filter", "-where", "group<oops", path}, &out); err == nil {
		t.Error("ordered comparison on string column accepted")
	}
}

func TestAgg(t *testing.T) {
	path := writeGenericStore(t, t.TempDir())
	out := results(t, "agg", "-col", "v", "-by", "group", path)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("agg printed %d lines:\n%s", len(lines), out)
	}
	// even rows: v = 0, 3, 6, 9, 12 → mean 6; odd rows: 1.5 ... 13.5 → mean 7.5
	if !strings.HasPrefix(lines[1], "even\t5\t6\t") {
		t.Errorf("even group = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "odd\t5\t7.5\t") {
		t.Errorf("odd group = %q", lines[2])
	}
}

// TestExportRecordsByteIdentical pins the headline export property: a
// record store exports exactly the JSONL the run wrote directly.
func TestExportRecordsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path, jsonl := writeRecordStore(t, dir)
	out := results(t, "export", path)
	if !bytes.Equal([]byte(out), jsonl) {
		t.Errorf("export differs from the run's own JSONL:\n%s\nvs\n%s", out, jsonl)
	}
	// And through -o FILE.
	of := filepath.Join(dir, "out.jsonl")
	results(t, "export", "-o", of, path)
	data, err := os.ReadFile(of)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, jsonl) {
		t.Error("-o export differs from stdout export")
	}
}

func TestExportGenericFormats(t *testing.T) {
	path := writeGenericStore(t, t.TempDir())
	jsonl := results(t, "export", path)
	if !strings.HasPrefix(jsonl, `{"group":"even","i":0,"v":0}`) {
		t.Errorf("generic jsonl starts %q", jsonl[:40])
	}
	csv := results(t, "export", "-format", "csv", path)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "group,i,v" || len(lines) != 11 {
		t.Errorf("csv = %q...", lines[0])
	}
	if lines[2] != "odd,1,1.5" {
		t.Errorf("csv row = %q", lines[2])
	}
}

// TestTornFile: strict subcommands refuse a torn store with a -recover
// hint; -recover salvages the committed prefix; ls never fails.
func TestTornFile(t *testing.T) {
	dir := t.TempDir()
	path := writeGenericStore(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.store")
	if err := os.WriteFile(torn, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"cat", torn}, &out)
	if err == nil || !strings.Contains(err.Error(), "-recover") {
		t.Errorf("strict cat on torn file: %v", err)
	}
	rec := results(t, "cat", "-recover", "-limit", "0", torn)
	if n := strings.Count(rec, "\n"); n != 11 { // footer torn off, all 10 data rows committed
		t.Errorf("recovered cat printed %d lines:\n%s", n, rec)
	}
	ls := results(t, "ls", torn)
	if !strings.Contains(ls, "torn") {
		t.Errorf("ls does not flag the torn file: %s", ls)
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"agg", "-by", "g", "nope.store"}, &out); err == nil {
		t.Error("agg without -col accepted")
	}
}
